// Incremental policy-score ordering over link-cache positions.
//
// The legacy select_best / select_top / offer paths rescanned (and rescored)
// every cache entry per call. A ScoreIndex keeps one policy's ordering as an
// indexed binary heap over (score, position) pairs, updated as entries are
// inserted, evicted, replaced, or refreshed — O(log n) per mutation, O(1)
// for the best entry, O(k log n) for a top-k.
//
// Determinism contract: the heap's comparator is exactly the legacy scan's
// tie-break — the best entry is the strict score optimum at the LOWEST
// current position (the scans kept the first maximum/minimum), and top-k
// pops in (score desc, position asc) order, matching the legacy
// partial_sort comparator. Since (score, position) pairs are unique, the
// heap layout cannot influence results: pops follow the total order.
//
// Positions are live indices into LinkCache::entries_, which swap-removes:
// on_swap_remove() both deletes the evicted position and re-keys the entry
// that moved into it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace guess {

class ScoreIndex {
 public:
  struct Item {
    double score = 0.0;
    std::uint32_t pos = 0;
  };

  enum class Order {
    kMaxFirst,  ///< selection policies: highest score probed first
    kMinFirst,  ///< retention policies: lowest score is the eviction victim
  };

  void reset(Order order, std::size_t capacity) {
    order_ = order;
    heap_.clear();
    heap_.reserve(capacity);
    slot_of_.clear();
    slot_of_.reserve(capacity);
  }

  std::size_t size() const { return heap_.size(); }

  /// Entry appended at position `pos` (== previous size).
  void on_insert(std::size_t pos, double score) {
    GUESS_CHECK(pos == heap_.size());
    heap_.push_back(Item{score, static_cast<std::uint32_t>(pos)});
    slot_of_.push_back(static_cast<std::uint32_t>(pos));
    sift_up(heap_.size() - 1);
  }

  /// Entry at `pos` re-scored in place (touch / set_num_res / replacement).
  void on_update(std::size_t pos, double score) {
    std::size_t slot = slot_of_[pos];
    heap_[slot].score = score;
    resift(slot);
  }

  /// LinkCache::erase_at(pos): the entry at `pos` is gone and the entry
  /// previously at `last` (== size-1) now lives at `pos`.
  void on_swap_remove(std::size_t pos, std::size_t last) {
    remove_slot(slot_of_[pos]);
    if (pos != last) {
      // The moved entry's score is unchanged but its tie-break position
      // dropped, which can only raise its priority.
      std::size_t slot = slot_of_[last];
      heap_[slot].pos = static_cast<std::uint32_t>(pos);
      slot_of_[pos] = static_cast<std::uint32_t>(slot);
      sift_up(slot);
    }
    slot_of_.pop_back();
  }

  /// The ordering's optimum: (score, position) of the entry the legacy scan
  /// would have returned.
  const Item& top() const {
    GUESS_CHECK(!heap_.empty());
    return heap_[0];
  }

  /// First `k` positions in selection order, appended to `out`. `scratch`
  /// holds a working copy of the heap; both keep their capacity across
  /// calls, so a warmed caller never allocates.
  void top_k(std::size_t k, std::vector<std::uint32_t>& out,
             std::vector<Item>& scratch) const {
    // Small k (the per-pong case: k=PongSize over a full cache): one linear
    // pass keeping a sorted best-k prefix in `scratch` beats copying the
    // whole heap just to pop k of it — most items fail the single
    // compare against the current k-th best. Output order is the same
    // either way: (score, position) pairs are unique, so the top-k in
    // selection order is independent of how it is extracted.
    if (k > 0 && k * 4 <= heap_.size()) {
      scratch.clear();
      for (const Item& item : heap_) {
        if (scratch.size() == k) {
          if (!better(item, scratch.back())) continue;
          std::size_t pos = k - 1;
          while (pos > 0 && better(item, scratch[pos - 1])) {
            scratch[pos] = scratch[pos - 1];
            --pos;
          }
          scratch[pos] = item;
        } else {
          scratch.push_back(item);
          for (std::size_t pos = scratch.size() - 1;
               pos > 0 && better(scratch[pos], scratch[pos - 1]); --pos) {
            std::swap(scratch[pos], scratch[pos - 1]);
          }
        }
      }
      for (const Item& item : scratch) out.push_back(item.pos);
      return;
    }
    scratch = heap_;
    std::size_t n = scratch.size();
    for (std::size_t i = 0; i < k && n > 0; ++i) {
      out.push_back(scratch[0].pos);
      scratch[0] = scratch[--n];
      // Sift the promoted tail element down within scratch[0..n).
      std::size_t s = 0;
      for (;;) {
        std::size_t l = 2 * s + 1;
        if (l >= n) break;
        std::size_t best = l;
        if (l + 1 < n && better(scratch[l + 1], scratch[l])) best = l + 1;
        if (!better(scratch[best], scratch[s])) break;
        std::swap(scratch[s], scratch[best]);
        s = best;
      }
    }
  }

  /// Rebuild from scratch (first-hand-only flips re-key every entry).
  /// `scores[i]` is position i's score.
  void rebuild(const std::vector<double>& scores) {
    heap_.clear();
    slot_of_.clear();
    for (std::size_t i = 0; i < scores.size(); ++i) on_insert(i, scores[i]);
  }

 private:
  bool better(const Item& a, const Item& b) const {
    if (a.score != b.score) {
      return order_ == Order::kMaxFirst ? a.score > b.score
                                        : a.score < b.score;
    }
    return a.pos < b.pos;
  }

  void sift_up(std::size_t slot) {
    while (slot > 0) {
      std::size_t parent = (slot - 1) / 2;
      if (!better(heap_[slot], heap_[parent])) break;
      swap_slots(slot, parent);
      slot = parent;
    }
  }

  void sift_down(std::size_t slot) {
    for (;;) {
      std::size_t l = 2 * slot + 1;
      if (l >= heap_.size()) break;
      std::size_t best = l;
      if (l + 1 < heap_.size() && better(heap_[l + 1], heap_[l])) best = l + 1;
      if (!better(heap_[best], heap_[slot])) break;
      swap_slots(slot, best);
      slot = best;
    }
  }

  void resift(std::size_t slot) {
    sift_up(slot);
    sift_down(slot);
  }

  void remove_slot(std::size_t slot) {
    std::size_t back = heap_.size() - 1;
    if (slot != back) {
      swap_slots(slot, back);
      heap_.pop_back();
      resift(slot);
    } else {
      heap_.pop_back();
    }
  }

  void swap_slots(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    slot_of_[heap_[a].pos] = static_cast<std::uint32_t>(a);
    slot_of_[heap_[b].pos] = static_cast<std::uint32_t>(b);
  }

  Order order_ = Order::kMaxFirst;
  std::vector<Item> heap_;           // binary heap of (score, position)
  std::vector<std::uint32_t> slot_of_;  // position -> heap slot
};

}  // namespace guess
