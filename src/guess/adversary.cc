#include "guess/adversary.h"

#include <utility>

#include "common/check.h"

namespace guess {

namespace {

std::size_t kind_slot(faults::AttackKind kind) {
  auto slot = static_cast<std::size_t>(kind);
  GUESS_CHECK(slot < faults::kNumAttackKinds);
  return slot;
}

/// Shared colluding-pong shape (eclipse and sybil): up to `pong_size`
/// entries naming fellow cohort members, never `self`. A lone member has
/// nobody to advertise and answers with an empty pong (no RNG draws, like
/// PoisonGenerator's collusion path).
void colluding_pong(const std::vector<PeerId>& roster, PeerId self,
                    std::size_t pong_size, sim::Time now, Rng& rng,
                    std::vector<CacheEntry>& out,
                    const MaliciousParams& params) {
  out.clear();
  if (roster.size() <= 1) return;
  if (out.capacity() < pong_size) out.reserve(pong_size);
  for (std::size_t i = 0; i < pong_size; ++i) {
    PeerId id = self;
    // Retry until we name someone else; the roster is > 1 so this
    // terminates quickly.
    while (id == self) id = roster[rng.index(roster.size())];
    out.push_back(CacheEntry{id, now, params.claimed_num_files,
                             params.claimed_num_res});
  }
}

class EclipseBehavior final : public AdversaryBehavior {
 public:
  using AdversaryBehavior::AdversaryBehavior;
  faults::AttackKind kind() const override {
    return faults::AttackKind::kEclipse;
  }
  double ping_interval_factor() const override {
    return 1.0 / zoo().params().adversary.eclipse_ping_boost;
  }
  void make_pong_into(PeerId self, std::size_t pong_size, sim::Time now,
                      Rng& rng, std::vector<CacheEntry>& out) const override {
    colluding_pong(zoo().roster(kind()), self, pong_size, now, rng, out,
                   zoo().params());
  }
};

class SybilBehavior final : public AdversaryBehavior {
 public:
  using AdversaryBehavior::AdversaryBehavior;
  faults::AttackKind kind() const override {
    return faults::AttackKind::kSybil;
  }
  sim::Duration identity_lifetime() const override {
    return zoo().params().adversary.sybil_lifetime;
  }
  void make_pong_into(PeerId self, std::size_t pong_size, sim::Time now,
                      Rng& rng, std::vector<CacheEntry>& out) const override {
    colluding_pong(zoo().roster(kind()), self, pong_size, now, rng, out,
                   zoo().params());
  }
};

class PongFloodBehavior final : public AdversaryBehavior {
 public:
  using AdversaryBehavior::AdversaryBehavior;
  faults::AttackKind kind() const override {
    return faults::AttackKind::kPongFlood;
  }
  // Amplification needs contact surface: the flooder pings as aggressively
  // as an eclipse colluder so introductions spread its address quickly.
  double ping_interval_factor() const override {
    return 1.0 / zoo().params().adversary.eclipse_ping_boost;
  }
  void make_pong_into(PeerId /*self*/, std::size_t pong_size, sim::Time now,
                      Rng& rng, std::vector<CacheEntry>& out) const override {
    out.clear();
    const std::vector<PeerId>& pool = zoo().flood_pool();
    if (pool.empty()) return;
    auto flood = static_cast<std::size_t>(
        zoo().params().adversary.pong_flood_factor *
        static_cast<double>(pong_size));
    if (flood < pong_size) flood = pong_size;
    if (out.capacity() < flood) out.reserve(flood);
    for (std::size_t i = 0; i < flood; ++i) {
      out.push_back(claim_entry(pool[rng.index(pool.size())], now));
    }
  }
};

class WithholdBehavior final : public AdversaryBehavior {
 public:
  using AdversaryBehavior::AdversaryBehavior;
  faults::AttackKind kind() const override {
    return faults::AttackKind::kWithhold;
  }
  bool withholds_replies() const override { return true; }
  void make_pong_into(PeerId /*self*/, std::size_t /*pong_size*/,
                      sim::Time /*now*/, Rng& /*rng*/,
                      std::vector<CacheEntry>& out) const override {
    // Unreachable in a run (the transport swallows the exchange before a
    // pong is built), but keep the contract total.
    out.clear();
  }
};

}  // namespace

CacheEntry AdversaryBehavior::claim_entry(PeerId id, sim::Time now) const {
  return CacheEntry{id, now, zoo_.params().claimed_num_files,
                    zoo_.params().claimed_num_res};
}

AdversaryZoo::AdversaryZoo(MaliciousParams params) : params_(params) {
  behaviors_[kind_slot(faults::AttackKind::kEclipse)] =
      std::make_unique<EclipseBehavior>(*this);
  behaviors_[kind_slot(faults::AttackKind::kSybil)] =
      std::make_unique<SybilBehavior>(*this);
  behaviors_[kind_slot(faults::AttackKind::kPongFlood)] =
      std::make_unique<PongFloodBehavior>(*this);
  behaviors_[kind_slot(faults::AttackKind::kWithhold)] =
      std::make_unique<WithholdBehavior>(*this);
}

AdversaryZoo::~AdversaryZoo() = default;

void AdversaryZoo::set_flood_pool(std::vector<PeerId> pool) {
  flood_pool_ = std::move(pool);
}

const AdversaryBehavior& AdversaryZoo::behavior(
    faults::AttackKind kind) const {
  return *behaviors_[kind_slot(kind)];
}

void AdversaryZoo::add(faults::AttackKind kind, PeerId id) {
  GUESS_CHECK(!index_.contains(id));
  std::vector<PeerId>& roster = rosters_[kind_slot(kind)];
  index_.emplace(id, Membership{kind, roster.size()});
  roster.push_back(id);
}

void AdversaryZoo::remove(PeerId id) {
  auto it = index_.find(id);
  GUESS_CHECK(it != index_.end());
  Membership membership = it->second;
  index_.erase(it);
  std::vector<PeerId>& roster = rosters_[kind_slot(membership.kind)];
  if (membership.pos != roster.size() - 1) {
    roster[membership.pos] = roster.back();
    index_[roster[membership.pos]].pos = membership.pos;
  }
  roster.pop_back();
}

const AdversaryBehavior* AdversaryZoo::behavior_of(PeerId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return behaviors_[kind_slot(it->second.kind)].get();
}

bool AdversaryZoo::withholds(PeerId id) const {
  const AdversaryBehavior* behavior = behavior_of(id);
  return behavior != nullptr && behavior->withholds_replies();
}

const std::vector<PeerId>& AdversaryZoo::roster(
    faults::AttackKind kind) const {
  return rosters_[kind_slot(kind)];
}

void AdversaryZoo::make_pong_into(PeerId self, std::size_t pong_size,
                                  sim::Time now, Rng& rng,
                                  std::vector<CacheEntry>& out) const {
  const AdversaryBehavior* behavior = behavior_of(self);
  GUESS_CHECK(behavior != nullptr);
  behavior->make_pong_into(self, pong_size, now, rng, out);
}

}  // namespace guess
