#include "guess/overload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace guess {

const char* overload_policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kNone: return "none";
    case OverloadPolicy::kAdmit: return "admit";
    case OverloadPolicy::kShed: return "shed";
    case OverloadPolicy::kBackpressure: return "backpressure";
  }
  GUESS_CHECK_MSG(false, "unknown OverloadPolicy");
  return "?";
}

OverloadPolicy parse_overload_policy(const std::string& name) {
  if (name == "none") return OverloadPolicy::kNone;
  if (name == "admit") return OverloadPolicy::kAdmit;
  if (name == "shed") return OverloadPolicy::kShed;
  if (name == "backpressure") return OverloadPolicy::kBackpressure;
  GUESS_CHECK_MSG(false,
                  "unknown overload policy '"
                      << name
                      << "' (expected none | admit | shed | backpressure)");
  return OverloadPolicy::kNone;
}

OverloadController::OverloadController(const OverloadParams& params)
    : params_(params) {
  window_ = static_cast<double>(params_.max_in_flight);
  if (params_.policy == OverloadPolicy::kShed ||
      params_.policy == OverloadPolicy::kBackpressure) {
    queue_.resize(params_.queue_capacity);
  }
}

bool OverloadController::has_slot() const {
  return params_.policy == OverloadPolicy::kNone ||
         static_cast<double>(in_flight_) < window_;
}

void OverloadController::push_queue(sim::Time issue) {
  GUESS_CHECK(queue_size_ < queue_.size());
  queue_[(queue_head_ + queue_size_) % queue_.size()] = issue;
  ++queue_size_;
}

sim::Time OverloadController::pop_oldest() {
  GUESS_CHECK(queue_size_ > 0);
  sim::Time issue = queue_[queue_head_];
  queue_head_ = (queue_head_ + 1) % queue_.size();
  --queue_size_;
  return issue;
}

sim::Time OverloadController::pop_newest() {
  GUESS_CHECK(queue_size_ > 0);
  --queue_size_;
  return queue_[(queue_head_ + queue_size_) % queue_.size()];
}

AdmitDecision OverloadController::on_arrival(sim::Time now) {
  AdmitDecision decision;
  if (has_slot() && queue_size_ == 0) {
    ++in_flight_;
    decision.action = AdmitAction::kStart;
    return decision;
  }
  switch (params_.policy) {
    case OverloadPolicy::kNone:
      // has_slot() is unconditionally true for kNone; unreachable.
      ++in_flight_;
      decision.action = AdmitAction::kStart;
      return decision;
    case OverloadPolicy::kAdmit:
      decision.action = AdmitAction::kReject;
      return decision;
    case OverloadPolicy::kShed:
      if (queue_size_ >= params_.shed_watermark) {
        // Past the watermark: make room by dropping, then take the arrival
        // (oldest-first keeps fresh work; newest-first refuses it instead).
        decision.shed = 1;
        if (params_.shed_oldest) {
          decision.shed_issue = pop_oldest();
          push_queue(now);
          decision.action = AdmitAction::kQueue;
        } else {
          decision.shed_issue = now;
          decision.action = AdmitAction::kReject;
        }
        return decision;
      }
      push_queue(now);
      decision.action = AdmitAction::kQueue;
      return decision;
    case OverloadPolicy::kBackpressure:
      if (queue_size_ >= queue_.size()) {
        decision.action = AdmitAction::kReject;
        return decision;
      }
      push_queue(now);
      decision.action = AdmitAction::kQueue;
      return decision;
  }
  GUESS_CHECK_MSG(false, "unknown OverloadPolicy");
  return decision;
}

bool OverloadController::try_start(sim::Time* issue) {
  if (queue_size_ == 0 || !has_slot()) return false;
  ++in_flight_;
  *issue = pop_oldest();
  return true;
}

void OverloadController::on_release() {
  GUESS_CHECK(in_flight_ > 0);
  --in_flight_;
}

bool OverloadController::drain_one(sim::Time* issue) {
  if (queue_size_ == 0) return false;
  *issue = pop_oldest();
  return true;
}

void OverloadController::tick(double failure_rate) {
  if (params_.policy != OverloadPolicy::kBackpressure) return;
  // Pressure signals: the transport is failing above target, or the
  // controller queue is past half capacity (the system is falling seriously
  // behind the window). Either one shrinks the window multiplicatively; a
  // healthy tick grows it additively. The backlog threshold is half-full,
  // not non-empty: under sustained open-loop load the queue is never empty,
  // and treating any backlog as pressure pins the window at min_window
  // permanently — all queueing delay, no throughput.
  bool pressure = failure_rate > params_.target_failure_rate ||
                  queue_size_ > queue_.size() / 2;
  if (pressure) {
    window_ *= params_.multiplicative_decrease;
  } else {
    window_ += params_.additive_increase;
  }
  window_ = std::clamp(window_, static_cast<double>(params_.min_window),
                       static_cast<double>(params_.max_window));
}

}  // namespace guess
