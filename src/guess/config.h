// SimulationConfig — the unified, validated construction surface of
// guesslib.
//
// Historically a simulation was assembled from four loose parameter structs
// plus a bool threaded positionally through GuessNetwork / GuessSimulation /
// the bench harness (`SystemParams, ProtocolParams, MaliciousParams,
// enable_queries, ...`). SimulationConfig replaces that boundary with one
// builder-style object:
//
//   auto config = guess::SimulationConfig()
//                     .system(system)
//                     .protocol(protocol)
//                     .transport(guess::TransportParams::lossy(0.05))
//                     .seed(7)
//                     .measure(1800.0);
//   guess::GuessSimulation sim(config);        // validates on construction
//   guess::SimulationResults results = sim.run();
//
// The old positional signatures survive as thin deprecated shims that build
// a SimulationConfig internally; new code (and all in-tree harnesses,
// benches and examples) should construct configs directly.
#pragma once

#include <cstdint>

#include "faults/scenario.h"
#include "guess/params.h"
#include "guess/transport.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace guess {

/// Run-control block: seed, windows, sampling cadence, threading and the
/// event-queue backend. Lives inside SimulationConfig; kept as a standalone
/// struct because the pre-config GuessSimulation signature takes it
/// directly.
struct SimulationOptions {
  std::uint64_t seed = 42;

  /// Simulated seconds before measurement starts (caches reach steady
  /// state; the paper measures steady-state behaviour).
  sim::Duration warmup = 600.0;

  /// Simulated seconds of the measurement window.
  sim::Duration measure = 2400.0;

  /// False for the §6.1 maintenance-only runs (Figures 6/7 isolate pings).
  bool enable_queries = true;

  /// Interval between cache-health samples (Table 3, Figures 18/21).
  sim::Duration health_sample_interval = 60.0;

  /// When true, also sample the conceptual overlay's largest connected
  /// component every connectivity_sample_interval (Figures 6/7).
  bool sample_connectivity = false;
  sim::Duration connectivity_sample_interval = 120.0;

  /// Worker threads for run_seeds (replications run concurrently, one per
  /// thread). 0 = auto: the GUESS_THREADS environment variable when set,
  /// else all hardware threads. 1 = serial in the calling thread. Thread
  /// count never changes results — replications are independent and are
  /// returned in seed order (see DESIGN.md "Threading model").
  int threads = 0;

  /// Event-queue backend (--scheduler={heap,calendar}). Both schedulers pop
  /// events in identical (time, seq) order, so the choice never changes
  /// results — only how fast the simulator processes events (see DESIGN.md
  /// "Event core").
  sim::Scheduler scheduler = sim::Scheduler::kHeap;

  /// Width of the time-resolved metrics intervals (DESIGN.md §9); 0 disables
  /// the interval series. Surfaced as --interval.
  sim::Duration metrics_interval = 0.0;

  MaliciousParams malicious;
};

/// Everything a GUESS simulation is built from, behind chainable setters.
/// Cheap to copy; validate() (called by GuessSimulation / GuessNetwork on
/// construction) rejects nonsense configurations with a CheckError instead
/// of letting them run.
class SimulationConfig {
 public:
  SimulationConfig() = default;

  // --- chainable setters ---

  SimulationConfig& system(SystemParams v) {
    system_ = v;
    return *this;
  }
  SimulationConfig& protocol(ProtocolParams v) {
    protocol_ = v;
    return *this;
  }
  SimulationConfig& malicious(MaliciousParams v) {
    options_.malicious = v;
    return *this;
  }
  SimulationConfig& transport(TransportParams v) {
    transport_ = v;
    return *this;
  }
  /// Replace the whole run-control block at once (harness convenience).
  SimulationConfig& options(SimulationOptions v) {
    options_ = v;
    return *this;
  }
  SimulationConfig& seed(std::uint64_t v) {
    options_.seed = v;
    return *this;
  }
  SimulationConfig& warmup(sim::Duration v) {
    options_.warmup = v;
    return *this;
  }
  SimulationConfig& measure(sim::Duration v) {
    options_.measure = v;
    return *this;
  }
  SimulationConfig& enable_queries(bool v) {
    options_.enable_queries = v;
    return *this;
  }
  SimulationConfig& sample_connectivity(bool v) {
    options_.sample_connectivity = v;
    return *this;
  }
  SimulationConfig& threads(int v) {
    options_.threads = v;
    return *this;
  }
  SimulationConfig& scheduler(sim::Scheduler v) {
    options_.scheduler = v;
    return *this;
  }
  SimulationConfig& metrics_interval(sim::Duration v) {
    options_.metrics_interval = v;
    return *this;
  }
  /// Fault scenario executed against the run (DESIGN.md §9). Empty (the
  /// default) means no fault engine is attached at all.
  SimulationConfig& scenario(faults::Scenario v) {
    scenario_ = std::move(v);
    return *this;
  }

  // --- accessors ---

  const SystemParams& system() const { return system_; }
  const ProtocolParams& protocol() const { return protocol_; }
  const MaliciousParams& malicious() const { return options_.malicious; }
  const TransportParams& transport() const { return transport_; }
  const SimulationOptions& options() const { return options_; }
  const faults::Scenario& scenario() const { return scenario_; }
  std::uint64_t seed() const { return options_.seed; }
  bool enable_queries() const { return options_.enable_queries; }

  /// Throws CheckError (with the offending field named) on invalid
  /// configurations: negative rates, loss outside [0, 1], timeout <= 0,
  /// empty windows of negative length, fractions that exceed the
  /// population, and similar nonsense. Returns *this so construction sites
  /// can validate inline.
  const SimulationConfig& validate() const;

 private:
  SystemParams system_;
  ProtocolParams protocol_;
  TransportParams transport_;
  SimulationOptions options_;
  faults::Scenario scenario_;
};

}  // namespace guess
