// SimulationConfig — the unified, validated construction surface of
// guesslib.
//
// Historically a simulation was assembled from four loose parameter structs
// plus a bool threaded positionally through GuessNetwork / GuessSimulation /
// the bench harness (`SystemParams, ProtocolParams, MaliciousParams,
// enable_queries, ...`). SimulationConfig replaces that boundary with one
// builder-style object:
//
//   auto config = guess::SimulationConfig()
//                     .system(system)
//                     .protocol(protocol)
//                     .transport(guess::TransportParams::lossy(0.05))
//                     .seed(7)
//                     .measure(1800.0);
//   guess::GuessSimulation sim(config);        // validates on construction
//   guess::SimulationResults results = sim.run();
//
// The old positional signatures were removed after every in-tree harness,
// bench and example migrated; SimulationConfig is the only construction
// surface. It is also the construction surface of every search backend
// (search::SearchBackend, DESIGN.md §12): the `backend` field selects the
// protocol and the `backends` block carries per-backend tuning.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/scenario.h"
#include "guess/overload.h"
#include "guess/params.h"
#include "guess/transport.h"
#include "sim/arrival.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace guess {

/// Which search protocol a run drives (search::SearchBackend registry key,
/// DESIGN.md §12). Every backend shares the SystemParams workload (network
/// size, churn, content model, bursty query arrivals) — the paper's "same
/// methodology" requirement — and draws protocol tuning from its own block
/// in BackendParams.
enum class SearchBackendId {
  kGuess,      ///< non-forwarding GUESS (src/guess, the paper's subject)
  kFlood,      ///< live Gnutella-style TTL flooding (src/gnutella)
  kIterative,  ///< iterative deepening over a static population (src/baseline)
  kOneHop,     ///< one-hop DHT lookups (src/onehop)
  kGossip,     ///< push/pull gossip of content ads + local knowledge (§12.4)
};

/// "guess" / "flood" / "iterative" / "onehop" / "gossip".
const char* backend_name(SearchBackendId id);

/// Parse a --backend= value; throws CheckError on unknown names.
SearchBackendId parse_backend(const std::string& name);

/// Tuning for the flooding backend (gnutella::DynamicParams overrides; the
/// workload fields come from SystemParams).
struct FloodBackendParams {
  std::size_t target_degree = 4;  ///< connections each peer keeps open
  std::size_t max_degree = 12;    ///< hard cap (§3.3 anti-hub remedy)
  std::size_t ttl = 4;            ///< flood TTL in overlay hops
  double hop_delay = 0.05;        ///< per-hop forwarding latency (s)
};

/// Tuning for the iterative-deepening backend. An empty schedule means
/// baseline::default_schedule(network_size) (rings at 20%/50%/100%).
struct IterativeBackendParams {
  std::vector<std::size_t> schedule;
  std::size_t num_queries = 10000;  ///< Monte-Carlo queries per run
};

/// Tuning for the one-hop DHT backend.
struct OneHopBackendParams {
  sim::Duration dissemination_delay = 30.0;  ///< membership-event lag (s)
};

/// Tuning for the gossip backend (DESIGN.md §12.4): push/pull rumor
/// mongering of content advertisements into per-peer knowledge caches.
struct GossipBackendParams {
  sim::Duration gossip_interval = 10.0;  ///< seconds between a peer's rounds
  std::size_t fanout = 2;                ///< exchange partners per round
  std::size_t ads_per_exchange = 8;      ///< advertisement entries per leg
  std::size_t knowledge_capacity = 64;   ///< per-peer knowledge-cache bound
  sim::Duration ad_ttl = 120.0;          ///< advertisement lifetime (s)
  /// Push-with-counter rumor mongering: how many times a learned ad is
  /// re-forwarded before it goes quiet (0 = only own-library ads spread).
  std::size_t residual_pushes = 2;
  /// Fallback probing budget per query once local knowledge is exhausted
  /// (mirrors ProtocolParams::max_probes_per_query).
  std::size_t max_probes = 1000;
  sim::Duration probe_interval = 0.2;    ///< modeled per-probe RTT slot (s)
};

/// Per-backend tuning blocks, all defaulted; only the selected backend's
/// block is read. GUESS tuning stays in ProtocolParams (Table 2).
struct BackendParams {
  FloodBackendParams flood;
  IterativeBackendParams iterative;
  OneHopBackendParams onehop;
  GossipBackendParams gossip;
};

/// Run-control block: seed, windows, sampling cadence, threading and the
/// event-queue backend. Lives inside SimulationConfig; kept as a standalone
/// struct because the pre-config GuessSimulation signature takes it
/// directly.
struct SimulationOptions {
  std::uint64_t seed = 42;

  /// Simulated seconds before measurement starts (caches reach steady
  /// state; the paper measures steady-state behaviour).
  sim::Duration warmup = 600.0;

  /// Simulated seconds of the measurement window.
  sim::Duration measure = 2400.0;

  /// False for the §6.1 maintenance-only runs (Figures 6/7 isolate pings).
  bool enable_queries = true;

  /// Interval between cache-health samples (Table 3, Figures 18/21).
  sim::Duration health_sample_interval = 60.0;

  /// When true, also sample the conceptual overlay's largest connected
  /// component every connectivity_sample_interval (Figures 6/7).
  bool sample_connectivity = false;
  sim::Duration connectivity_sample_interval = 120.0;

  /// Worker threads for run_seeds (replications run concurrently, one per
  /// thread). 0 = auto: the GUESS_THREADS environment variable when set,
  /// else all hardware threads. 1 = serial in the calling thread. Thread
  /// count never changes results — replications are independent and are
  /// returned in seed order (see DESIGN.md "Threading model").
  int threads = 0;

  /// Event-queue backend (--scheduler={heap,calendar}). Both schedulers pop
  /// events in identical (time, seq) order, so the choice never changes
  /// results — only how fast the simulator processes events (see DESIGN.md
  /// "Event core").
  sim::Scheduler scheduler = sim::Scheduler::kHeap;

  /// Width of the time-resolved metrics intervals (DESIGN.md §9); 0 disables
  /// the interval series. Surfaced as --interval.
  sim::Duration metrics_interval = 0.0;

  /// How queries are injected (DESIGN.md §13): kClosed is the paper's
  /// per-peer query clock; kOpen replaces it with an external
  /// sim::ArrivalProcess at offered_qps arrivals/sec (--arrival).
  sim::ArrivalMode arrival = sim::ArrivalMode::kClosed;

  /// Open-loop offered load, queries per simulated second (--offered-qps).
  /// Must be > 0 when arrival == kOpen; ignored (and required 0) when
  /// closed.
  double offered_qps = 0.0;

  /// Inter-arrival gap distribution of the open-loop process
  /// (--arrival-dist).
  sim::ArrivalDist arrival_dist = sim::ArrivalDist::kPoisson;

  /// Latency SLO in seconds (--slo-ms / 1000): a query counts toward
  /// goodput only if it is satisfied within this budget.
  double slo = 10.0;

  /// Overload-control policy + tuning for open-loop runs (DESIGN.md §13.3,
  /// --overload-policy).
  OverloadParams overload;

  MaliciousParams malicious;
};

/// Everything a GUESS simulation is built from, behind chainable setters.
/// Cheap to copy; validate() (called by GuessSimulation / GuessNetwork on
/// construction) rejects nonsense configurations with a CheckError instead
/// of letting them run.
class SimulationConfig {
 public:
  SimulationConfig() = default;

  // --- chainable setters ---

  SimulationConfig& system(SystemParams v) {
    system_ = v;
    return *this;
  }
  SimulationConfig& protocol(ProtocolParams v) {
    protocol_ = v;
    return *this;
  }
  SimulationConfig& malicious(MaliciousParams v) {
    options_.malicious = v;
    return *this;
  }
  SimulationConfig& transport(TransportParams v) {
    transport_ = v;
    return *this;
  }
  /// Replace the whole run-control block at once (harness convenience).
  SimulationConfig& options(SimulationOptions v) {
    options_ = v;
    return *this;
  }
  SimulationConfig& seed(std::uint64_t v) {
    options_.seed = v;
    return *this;
  }
  SimulationConfig& warmup(sim::Duration v) {
    options_.warmup = v;
    return *this;
  }
  SimulationConfig& measure(sim::Duration v) {
    options_.measure = v;
    return *this;
  }
  SimulationConfig& enable_queries(bool v) {
    options_.enable_queries = v;
    return *this;
  }
  SimulationConfig& sample_connectivity(bool v) {
    options_.sample_connectivity = v;
    return *this;
  }
  SimulationConfig& threads(int v) {
    options_.threads = v;
    return *this;
  }
  SimulationConfig& scheduler(sim::Scheduler v) {
    options_.scheduler = v;
    return *this;
  }
  SimulationConfig& metrics_interval(sim::Duration v) {
    options_.metrics_interval = v;
    return *this;
  }
  SimulationConfig& arrival(sim::ArrivalMode v) {
    options_.arrival = v;
    return *this;
  }
  SimulationConfig& offered_qps(double v) {
    options_.offered_qps = v;
    return *this;
  }
  SimulationConfig& arrival_dist(sim::ArrivalDist v) {
    options_.arrival_dist = v;
    return *this;
  }
  SimulationConfig& slo(double seconds) {
    options_.slo = seconds;
    return *this;
  }
  SimulationConfig& overload(OverloadParams v) {
    options_.overload = v;
    return *this;
  }
  SimulationConfig& overload_policy(OverloadPolicy v) {
    options_.overload.policy = v;
    return *this;
  }
  /// Fault scenario executed against the run (DESIGN.md §9). Empty (the
  /// default) means no fault engine is attached at all.
  SimulationConfig& scenario(faults::Scenario v) {
    scenario_ = std::move(v);
    return *this;
  }
  /// Which search backend a run drives (search::make_backend key); GUESS by
  /// default. Non-GUESS backends read the workload from SystemParams and
  /// their tuning from the backends block.
  SimulationConfig& backend(SearchBackendId v) {
    backend_ = v;
    return *this;
  }
  /// Replace the per-backend tuning blocks at once.
  SimulationConfig& backends(BackendParams v) {
    backends_ = std::move(v);
    return *this;
  }
  SimulationConfig& flood(FloodBackendParams v) {
    backends_.flood = v;
    return *this;
  }
  SimulationConfig& iterative(IterativeBackendParams v) {
    backends_.iterative = std::move(v);
    return *this;
  }
  SimulationConfig& onehop(OneHopBackendParams v) {
    backends_.onehop = v;
    return *this;
  }
  SimulationConfig& gossip(GossipBackendParams v) {
    backends_.gossip = v;
    return *this;
  }

  // --- accessors ---

  const SystemParams& system() const { return system_; }
  const ProtocolParams& protocol() const { return protocol_; }
  const MaliciousParams& malicious() const { return options_.malicious; }
  const TransportParams& transport() const { return transport_; }
  const SimulationOptions& options() const { return options_; }
  const faults::Scenario& scenario() const { return scenario_; }
  SearchBackendId backend() const { return backend_; }
  const BackendParams& backends() const { return backends_; }
  std::uint64_t seed() const { return options_.seed; }
  bool enable_queries() const { return options_.enable_queries; }
  /// True when the run uses the external open-loop arrival process.
  bool open_loop() const {
    return options_.arrival == sim::ArrivalMode::kOpen;
  }

  /// Throws CheckError (with the offending field named) on invalid
  /// configurations: negative rates, loss outside [0, 1], timeout <= 0,
  /// empty windows of negative length, fractions that exceed the
  /// population, and similar nonsense. Returns *this so construction sites
  /// can validate inline.
  const SimulationConfig& validate() const;

 private:
  SystemParams system_;
  ProtocolParams protocol_;
  TransportParams transport_;
  SimulationOptions options_;
  faults::Scenario scenario_;
  SearchBackendId backend_ = SearchBackendId::kGuess;
  BackendParams backends_;
};

}  // namespace guess
