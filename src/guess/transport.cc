#include "guess/transport.h"

#include <algorithm>

#include "common/check.h"

namespace guess {

namespace {
const char* kind_name(MessageKind kind) {
  return kind == MessageKind::kPing ? "ping" : "probe";
}
}  // namespace

std::string describe(const TransportParams& params) {
  if (params.kind == TransportParams::Kind::kSynchronous) {
    return "Synchronous (in-event, §5.1)";
  }
  std::ostringstream os;
  os << "Lossy loss=" << params.loss << " latency=" << params.link_latency
     << "s ("
     << (params.latency_distribution == LatencyDistribution::kFixed
             ? "fixed"
             : params.latency_distribution == LatencyDistribution::kUniform
                   ? "uniform"
                   : "exponential")
     << ") timeout=" << params.probe_timeout
     << "s retries=" << params.max_retries << " backoff="
     << (params.backoff == TransportParams::Backoff::kFixed ? "fixed"
                                                            : "exponential")
     << "/" << params.retry_backoff << "s max_backoff=" << params.max_backoff
     << "s";
  return os.str();
}

// --- SynchronousTransport ---------------------------------------------------

void SynchronousTransport::exchange(MessageKind kind, PeerId from, PeerId to,
                                    Completion on_complete) {
  (void)kind;
  ++counters_.messages_sent;
  // A severed pair behaves like a probe into the void even under the §5.1
  // in-event model: the request vanishes, the exchange times out inline.
  if (modulation_ != nullptr && modulation_->severed(from, to)) {
    ++counters_.messages_lost;
    ++counters_.exchanges_failed;
    on_complete(DeliveryStatus::kTimedOut);
    return;
  }
  on_complete(DeliveryStatus::kDelivered);
}

// --- LossyTransport ---------------------------------------------------------

// Event thunks. Both are three small words; the static_asserts pin them to
// the event queue's inline buffer so fault-injection timeouts/retries never
// allocate inside the scheduler (the exchange state itself lives in the
// transport's slab).
struct LossyTransport::AttemptResolved {
  LossyTransport* transport;
  std::uint32_t slot;
  bool delivered;
  void operator()() const { transport->attempt_resolved(slot, delivered); }
};
struct LossyTransport::ResendFired {
  LossyTransport* transport;
  std::uint32_t slot;
  void operator()() const { transport->send_attempt(slot); }
};

LossyTransport::LossyTransport(TransportParams params,
                               sim::Simulator& simulator, Rng rng)
    : params_(params), simulator_(simulator), rng_(std::move(rng)) {
  static_assert(
      sim::EventQueue::Callback::stores_inline<AttemptResolved>());
  static_assert(sim::EventQueue::Callback::stores_inline<ResendFired>());
  GUESS_CHECK_MSG(params_.kind == TransportParams::Kind::kLossy,
                  "LossyTransport constructed with non-lossy params");
  GUESS_CHECK(params_.loss >= 0.0 && params_.loss <= 1.0);
  GUESS_CHECK(params_.probe_timeout > 0.0);
  GUESS_CHECK(params_.link_latency >= 0.0);
  GUESS_CHECK(params_.retry_backoff >= 0.0);
  GUESS_CHECK(params_.max_backoff > 0.0);
}

std::uint32_t LossyTransport::acquire_slot() {
  if (free_head_ != kNilSlot) {
    std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void LossyTransport::release_slot(std::uint32_t slot) {
  PendingExchange& p = slab_[slot];
  p.on_complete = nullptr;  // drop the captured state eagerly
  p.next_free = free_head_;
  free_head_ = slot;
}

void LossyTransport::exchange(MessageKind kind, PeerId from, PeerId to,
                              Completion on_complete) {
  std::uint32_t slot = acquire_slot();
  PendingExchange& p = slab_[slot];
  p.kind = kind;
  p.from = from;
  p.to = to;
  p.attempt = 0;
  p.on_complete = std::move(on_complete);
  ++in_flight_;
  send_attempt(slot);
}

sim::Duration LossyTransport::draw_latency() {
  switch (params_.latency_distribution) {
    case LatencyDistribution::kFixed:
      return params_.link_latency;
    case LatencyDistribution::kUniform:
      return rng_.uniform(0.0, 2.0 * params_.link_latency);
    case LatencyDistribution::kExponential:
      return params_.link_latency <= 0.0
                 ? 0.0
                 : rng_.exponential(1.0 / params_.link_latency);
  }
  return params_.link_latency;
}

sim::Duration LossyTransport::backoff_delay(std::uint32_t attempt) const {
  if (params_.backoff == TransportParams::Backoff::kFixed) {
    return std::min(params_.retry_backoff, params_.max_backoff);
  }
  // Exponential: attempt k (1-based) already timed out, so the k+1-th send
  // waits retry_backoff * 2^(k-1), capped at max_backoff. Break out of the
  // doubling as soon as the cap is reached — 2^k overflows to inf long
  // before a large max_retries runs out.
  sim::Duration delay = params_.retry_backoff;
  for (std::uint32_t i = 1; i < attempt && delay < params_.max_backoff; ++i) {
    delay *= 2.0;
  }
  return std::min(delay, params_.max_backoff);
}

void LossyTransport::send_attempt(std::uint32_t slot) {
  PendingExchange& p = slab_[slot];
  ++p.attempt;
  ++counters_.messages_sent;

  // An attempt's fate is sealed at send time: both legs' loss coins and
  // latencies are drawn up front (a fixed four-draw budget per attempt keeps
  // the stream easy to reason about), and exactly one event resolves it —
  // delivery at now + rtt, or the timeout at now + probe_timeout. Fault
  // modulation perturbs the *parameters* of the draws, never their count, so
  // the RNG stream stays aligned across fault windows opening and closing.
  double loss = params_.loss;
  double latency_factor = 1.0;
  bool severed = false;
  if (modulation_ != nullptr) {
    severed = modulation_->severed(p.from, p.to);
    loss = std::min(1.0, loss + modulation_->extra_loss());
    latency_factor = modulation_->latency_factor();
  }
  bool request_lost = rng_.bernoulli(loss);
  bool reply_lost = rng_.bernoulli(loss);
  sim::Duration rtt = (draw_latency() + draw_latency()) * latency_factor;

  if (!severed && !request_lost && !reply_lost &&
      rtt <= params_.probe_timeout) {
    trace(simulator_.now(), [&](std::ostream& os) {
      os << kind_name(p.kind) << " " << p.from << " -> " << p.to
         << " attempt=" << p.attempt << " rtt=" << rtt;
    });
    simulator_.after(rtt, AttemptResolved{this, slot, /*delivered=*/true});
    return;
  }

  if (severed) {
    // The request crossed a partition boundary: swallowed by the cut.
    ++counters_.messages_lost;
  } else if (request_lost) {
    ++counters_.messages_lost;
  } else if (reply_lost) {
    // The reply leg only exists if the request arrived.
    ++counters_.messages_lost;
  } else {
    // Both legs survive but the round trip outlasts the timeout: the reply
    // lands on a requester that has already given up on this attempt.
    ++counters_.late_replies;
  }
  trace(simulator_.now(), [&](std::ostream& os) {
    os << kind_name(p.kind) << " " << p.from << " -> " << p.to
       << " attempt=" << p.attempt
       << (severed ? " severed"
                   : request_lost ? " lost=request"
                                  : reply_lost ? " lost=reply" : " late")
       << " timeout_at=" << simulator_.now() + params_.probe_timeout;
  });
  simulator_.after(params_.probe_timeout,
                   AttemptResolved{this, slot, /*delivered=*/false});
}

void LossyTransport::attempt_resolved(std::uint32_t slot, bool delivered) {
  PendingExchange& p = slab_[slot];
  if (delivered) {
    complete(slot, DeliveryStatus::kDelivered);
    return;
  }
  ++counters_.timeouts;
  if (static_cast<std::size_t>(p.attempt) <= params_.max_retries) {
    ++counters_.retransmits;
    sim::Duration delay = backoff_delay(p.attempt);
    trace(simulator_.now(), [&](std::ostream& os) {
      os << kind_name(p.kind) << " " << p.from << " -> " << p.to
         << " retransmit after=" << delay << "s (attempt " << p.attempt + 1
         << "/" << params_.max_retries + 1 << ")";
    });
    simulator_.after(delay, ResendFired{this, slot});
    return;
  }
  ++counters_.exchanges_failed;
  trace(simulator_.now(), [&](std::ostream& os) {
    os << kind_name(p.kind) << " " << p.from << " -> " << p.to
       << " failed after " << p.attempt << " attempt(s)";
  });
  complete(slot, DeliveryStatus::kTimedOut);
}

void LossyTransport::complete(std::uint32_t slot, DeliveryStatus status) {
  // Move the completion out before releasing: the callback may start new
  // exchanges, which can reuse (or grow) the slab.
  Completion on_complete = std::move(slab_[slot].on_complete);
  release_slot(slot);
  --in_flight_;
  on_complete(status);
}

}  // namespace guess
