// Aggregated simulation results — one struct per run, covering every metric
// the paper's tables and figures report.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "guess/query_execution.h"
#include "sim/time.h"

namespace guess {

/// Link-cache health, averaged over periodic samples of all live good peers
/// (Table 3; Figures 18 and 21).
struct CacheHealth {
  double fraction_live = 0.0;   ///< live entries / current entries
  double absolute_live = 0.0;   ///< live entries per cache
  double good_entries = 0.0;    ///< entries pointing to live, honest peers
  double entries = 0.0;         ///< current entries per cache (≤ CacheSize)
  std::size_t samples = 0;
};

/// Message-level accounting of the transport layer (DESIGN.md §8). All
/// fields stay zero under the default SynchronousTransport except
/// messages_sent; the fault-injection counters (losses, timeouts,
/// retransmits, late replies) only move under LossyTransport.
struct TransportCounters {
  std::uint64_t messages_sent = 0;     ///< request attempts, incl. retransmits
  std::uint64_t messages_lost = 0;     ///< request or reply legs dropped
  std::uint64_t timeouts = 0;          ///< attempts that expired unanswered
  std::uint64_t retransmits = 0;       ///< re-sends after a timed-out attempt
  std::uint64_t late_replies = 0;      ///< replies landing after the timeout
  std::uint64_t exchanges_failed = 0;  ///< exchanges that exhausted retries

  TransportCounters& operator+=(const TransportCounters& other);
  /// Counter-wise difference (for measurement-window snapshots); every field
  /// of `other` must be <= the corresponding field of *this.
  TransportCounters operator-(const TransportCounters& other) const;
};

/// Adversary-zoo activity and the defenses it triggered (DESIGN.md §11).
/// Counted over the whole run (attack windows rarely align with the
/// measurement window); all zeros when the scenario deploys no attacks.
struct AttackStats {
  std::uint64_t adversaries_spawned = 0;  ///< cohort members ever deployed
  std::uint64_t adversaries_retired = 0;  ///< removed at window end / expiry
  std::uint64_t sybil_respawns = 0;       ///< fresh identities after expiry
  std::uint64_t withheld_exchanges = 0;   ///< send attempts withholders swallowed
  std::uint64_t oversized_pongs = 0;      ///< pongs over max_pong_entries
  std::uint64_t pong_entries_dropped = 0; ///< entries discarded by the cap
  std::uint64_t no_reply_charges = 0;     ///< charge_no_reply referrals filed
};

/// One closed sampling interval of the time-resolved series (DESIGN.md §9).
/// Queries are attributed to the interval in which they *finish*; population
/// and transport counters are read at the interval boundary.
struct IntervalSample {
  sim::Time start = 0.0;               ///< inclusive interval start
  sim::Time end = 0.0;                 ///< exclusive interval end
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_satisfied = 0;
  std::uint64_t probes = 0;            ///< probes of queries finishing here
  std::size_t live_peers = 0;          ///< live population at `end`
  TransportCounters transport;         ///< counter deltas over the interval

  // --- open-loop overload accounting (DESIGN.md §13; zero when closed) ---
  std::uint64_t arrivals = 0;   ///< offered queries this interval
  std::uint64_t rejected = 0;   ///< refused at the door by the controller
  std::uint64_t shed = 0;       ///< dropped from the controller queue
  std::uint64_t slo_ok = 0;     ///< completions satisfied within the SLO

  /// Goodput of the interval: satisfied-within-SLO completions per second.
  double goodput() const {
    sim::Duration width = end - start;
    return width > 0.0 ? static_cast<double>(slo_ok) / width : 0.0;
  }

  /// Satisfied fraction of the interval's queries; -1 if none finished (an
  /// empty interval carries no success signal and must not read as 0%).
  double success_rate() const {
    return queries_completed == 0
               ? -1.0
               : static_cast<double>(queries_satisfied) /
                     static_cast<double>(queries_completed);
  }
  double probes_per_query() const {
    return queries_completed == 0 ? 0.0
                                  : static_cast<double>(probes) /
                                        static_cast<double>(queries_completed);
  }
};

/// The whole run's interval series, in time order. Unlike SimulationResults
/// this spans warmup too: a fault landing at the measurement boundary still
/// needs a pre-fault baseline to recover *to*.
using IntervalSeries = std::vector<IntervalSample>;

/// Fault-recovery summary derived from an IntervalSeries and a fault window
/// (DESIGN.md §9). All rates are interval success rates; intervals in which
/// no query finished are skipped (they carry no signal).
struct RecoveryMetrics {
  double baseline = 1.0;        ///< mean success over pre-fault intervals
  double min_during_fault = 1.0;///< worst interval at/after fault onset
  /// Seconds from fault onset until the first post-fault-end interval whose
  /// success rate is back within epsilon of baseline; -1 if never recovered.
  double time_to_recovery = -1.0;
  /// Fraction of intervals at/after onset with success >= baseline - epsilon.
  double availability = 1.0;
  double epsilon = 0.0;         ///< tolerance the above were computed with
};

/// Compute recovery metrics for a fault active over [fault_start, fault_end]
/// (for an instantaneous fault like a mass kill, pass fault_end ==
/// fault_start). `epsilon` is the tolerated success-rate shortfall.
RecoveryMetrics compute_recovery(const IntervalSeries& series,
                                 sim::Time fault_start, sim::Time fault_end,
                                 double epsilon = 0.05);

/// Per-peer-class query metrics: the selfish-peer study (§3.3) compares
/// honest and selfish peers' experience side by side.
struct ClassMetrics {
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_satisfied = 0;
  ProbeCounters probes;
  RunningStat response_time;

  double unsatisfied_rate() const;
  double probes_per_query() const;
};

/// Everything measured during one simulation's measurement window.
struct SimulationResults {
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_satisfied = 0;
  ProbeCounters probes;  ///< summed over completed queries

  /// Per-class splits of the same query metrics (honest vs selfish peers).
  ClassMetrics honest;
  ClassMetrics selfish;

  /// Response time of satisfied queries, seconds (§6.2).
  RunningStat response_time;

  /// Distinct peers that entered a query's candidate set (query-cache size).
  RunningStat query_cache_population;

  /// Per-query total probes, one sample per completed query — the
  /// distribution behind probes_per_query() (percentiles feed the backend
  /// matrix, DESIGN.md §12). Recorded only during measurement.
  SampleSet query_probes;

  /// Query probes received per peer over its lifetime, one sample per good
  /// peer that existed during the run (Figure 13).
  SampleSet peer_loads;

  CacheHealth cache_health;

  /// Largest weakly-connected component of the conceptual overlay, sampled
  /// periodically when connectivity sampling is enabled (Figures 6, 7).
  RunningStat largest_component;

  /// End-of-run connectivity snapshot (only when connectivity sampling is
  /// enabled). Neighbor pointers are one-way (§2.1), so the strongly
  /// connected component — peers that can reach each other — can be much
  /// smaller than the weak one the paper plots.
  std::size_t final_largest_component = 0;
  std::size_t final_largest_strong_component = 0;

  std::uint64_t deaths = 0;        ///< peer deaths during the whole run
  std::uint64_t pings_sent = 0;    ///< during measurement
  std::uint64_t pings_to_dead = 0; ///< during measurement

  /// Transport-level message accounting during measurement (DESIGN.md §8).
  TransportCounters transport;

  /// Adversary-zoo activity and triggered defenses, whole-run (§11).
  AttackStats attack;

  /// Queries abandoned because a creditless peer stalled past the limit
  /// (§3.3 probe payments; counted within queries_completed, unsatisfied).
  std::uint64_t queries_stalled_out = 0;

  /// Time-resolved per-interval series (empty unless metrics_interval > 0).
  /// Covers the whole run including warmup — see IntervalSeries.
  IntervalSeries interval_series;

  double measure_duration = 0.0;   ///< seconds of measurement window
  std::size_t network_size = 0;

  // --- derived ---
  double unsatisfied_rate() const;
  double probes_per_query() const;
  double good_probes_per_query() const;
  double dead_probes_per_query() const;
  double refused_probes_per_query() const;
};

}  // namespace guess
