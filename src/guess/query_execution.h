// Execution state of one GUESS query (§2.3).
//
// A querying peer iterates through candidates drawn from its link cache and
// its per-query query cache, probing one peer per probe slot (serially, per
// the GUESS spec) until enough results arrive or candidates run out. Pong
// entries received during the query flow into the query cache, extending the
// candidate set far past the link cache's bounds.
//
// This class holds the candidate ordering (a max-heap keyed by the
// QueryProbe policy score), the de-duplication set (a peer is probed at most
// once per query), and the per-query probe accounting. Message exchange is
// driven by GuessNetwork.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/epoch_set.h"
#include "common/rng.h"
#include "content/types.h"
#include "guess/cache_entry.h"
#include "guess/policy.h"
#include "sim/time.h"

namespace guess {

/// Outcome of a single probe, for accounting.
enum class ProbeOutcome {
  kGood,     ///< live peer processed the query (result or not)
  kDead,     ///< target has left the network: timeout, wasted probe
  kRefused,  ///< target is overloaded and dropped the probe (§6.3)
};

/// Per-query probe counters (the paper's good/dead/refused breakdown).
struct ProbeCounters {
  std::uint64_t good = 0;
  std::uint64_t dead = 0;
  std::uint64_t refused = 0;

  std::uint64_t total() const { return good + dead + refused; }
  void count(ProbeOutcome outcome);
  ProbeCounters& operator+=(const ProbeCounters& other);
};

class QueryExecution {
 public:
  /// @param origin   querying peer
  /// @param file     query target
  /// @param desired  NumDesiredResults
  /// @param probe_policy  the QueryProbe policy ordering the candidates
  /// @param parallel      probes issued per probe slot (1 for spec-compliant
  ///                      serial probing; higher for selfish peers or the
  ///                      §6.2 parallel-walk extension)
  /// @param first_hand_only  MR* scoring: foreign NumRes claims rank as 0
  QueryExecution(PeerId origin, content::FileId file, std::uint32_t desired,
                 Policy probe_policy, sim::Time start,
                 std::size_t parallel = 1, bool first_hand_only = false);

  /// Re-arm a pooled execution for a new query: every per-query field is
  /// reinitialized; the heap's and dedup set's storage is retained, so a
  /// recycled execution performs zero heap allocations (the dedup clear is
  /// an O(1) epoch bump). Equivalent to constructing afresh.
  void reset(PeerId origin, content::FileId file, std::uint32_t desired,
             Policy probe_policy, sim::Time start, std::size_t parallel = 1,
             bool first_hand_only = false);

  /// Pre-size the candidate heap and dedup set (start_query reserves the
  /// link-cache size plus the expected Pong fan-in up front, so candidate
  /// arrivals do not grow the heap one doubling at a time).
  void reserve_candidates(std::size_t n) {
    if (heap_.capacity() < n) heap_.reserve(n);
    if (candidates_.capacity() < n) candidates_.reserve(n);
    seen_.reserve(n);
  }

  PeerId origin() const { return origin_; }
  content::FileId file() const { return file_; }
  sim::Time start_time() const { return start_; }

  /// External issue time (open-loop arrival instant, or the enqueue time of
  /// a closed-loop burst): start_time() minus any per-peer queueing delay.
  /// Defaults to start_time() until the network stamps it after reset.
  sim::Time issue_time() const { return issue_; }
  void set_issue_time(sim::Time issued) { issue_ = issued; }

  /// A queued candidate and the peer whose Pong referred it (kInvalidPeer
  /// for entries taken from the origin's own link cache) — the provenance
  /// the §6.4 detection heuristic scores.
  struct Candidate {
    CacheEntry entry;
    PeerId source = kInvalidPeer;
  };

  /// Offer a candidate (link-cache entry at start, or Pong entry during the
  /// query). Ignored if it is the origin or was already offered — the query
  /// cache only accepts addresses "not already seen before" (§5.1).
  /// @returns true if the candidate joined the queue.
  bool add_candidate(const CacheEntry& entry, Rng& rng) {
    return add_candidate(entry, kInvalidPeer, rng);
  }
  bool add_candidate(const CacheEntry& entry, PeerId source, Rng& rng);

  /// Next peer to probe, by descending QueryProbe score. nullopt when
  /// exhausted.
  std::optional<Candidate> next_candidate();

  /// Candidates still queued (not yet probed).
  std::size_t queued() const { return heap_.size(); }

  /// Total distinct peers ever offered (the query-cache population).
  std::size_t seen() const { return seen_.size(); }

  void record_outcome(ProbeOutcome outcome) { counters_.count(outcome); }
  void add_results(std::uint32_t n) { results_ += n; }

  std::uint32_t results() const { return results_; }
  bool satisfied() const { return results_ >= desired_; }
  const ProbeCounters& counters() const { return counters_; }

  // --- per-slot pacing state ---

  /// Probes to issue in the next slot.
  std::size_t slot_parallel() const { return parallel_; }

  /// Record the outcome of one probe slot for the §6.2 adaptive extension:
  /// after `trigger` consecutive result-less slots the per-slot probe count
  /// doubles (capped at `max`, never below the starting width).
  void note_slot(bool any_results, bool adaptive, std::size_t trigger,
                 std::size_t max);

  /// A slot in which no probe could be sent (creditless under payments).
  void note_stalled_slot() { ++stalled_slots_; }
  void reset_stall() { stalled_slots_ = 0; }
  std::size_t stalled_slots() const { return stalled_slots_; }

  // --- transport-driven slot lifecycle ---
  //
  // Probes travel through a Transport and may resolve asynchronously
  // (LossyTransport), so the end-of-slot evaluation fires when the last
  // probe of the slot resolves, not when the issue loop returns. The
  // bracket: begin_slot() -> note_probe_issued()* -> end_issuing(), with
  // note_probe_resolved() per completion; whichever of end_issuing /
  // note_probe_resolved sees the slot drained (returns true) runs the slot
  // epilogue. Under SynchronousTransport completions run inside the issue
  // loop, so end_issuing() always closes the slot — reproducing the
  // pre-transport in-event ordering exactly.

  /// Open a probe slot: snapshot the result count (for note_slot's
  /// any-results decision) and reset the per-slot issue accounting.
  void begin_slot() {
    slot_results_baseline_ = results_;
    slot_probes_issued_ = 0;
    slot_creditless_ = false;
    slot_outstanding_ = 0;
    slot_issuing_ = true;
  }
  void note_probe_issued() {
    ++slot_probes_issued_;
    ++slot_outstanding_;
  }
  void note_creditless() { slot_creditless_ = true; }

  /// Close the issue loop. @returns true if every probe of the slot has
  /// already resolved (run the slot epilogue now).
  bool end_issuing() {
    slot_issuing_ = false;
    return slot_outstanding_ == 0;
  }

  /// One probe of the current slot resolved. @returns true if it was the
  /// last one and the issue loop has finished (run the slot epilogue now).
  bool note_probe_resolved() {
    --slot_outstanding_;
    return !slot_issuing_ && slot_outstanding_ == 0;
  }

  std::size_t slot_probes_issued() const { return slot_probes_issued_; }
  bool slot_creditless() const { return slot_creditless_; }
  std::uint32_t slot_results_baseline() const {
    return slot_results_baseline_;
  }
  std::size_t slot_outstanding() const { return slot_outstanding_; }

  /// Network-assigned token matching in-flight transport completions to
  /// this execution (a late completion whose token mismatches the origin's
  /// current query is dropped — the query it belonged to already finished).
  void set_token(std::uint64_t token) { token_ = token; }
  std::uint64_t token() const { return token_; }

 private:
  // The heap orders 16-byte (score, seq, idx) keys; the 40-byte Candidate
  // payloads sit in a side pool indexed by `idx`. Queries ingest far more
  // candidates than they probe (a satisfied query abandons most of its
  // queue), so cheap push/sift moves dominate — and since (score, seq) is a
  // total order (seq is unique), pop order is identical to a heap that
  // carried the payloads inline.
  struct Scored {
    double score;
    std::uint32_t seq;  // FIFO tie-break keeps runs deterministic
    std::uint32_t idx;  // payload slot in candidates_
    bool operator<(const Scored& other) const {
      if (score != other.score) return score < other.score;
      return seq > other.seq;
    }
  };

  PeerId origin_;
  content::FileId file_;
  std::uint32_t desired_;
  Policy probe_policy_;
  sim::Time start_;
  sim::Time issue_ = 0.0;
  bool first_hand_only_;

  // Max-heap via push_heap/pop_heap over a plain vector (what
  // priority_queue does under the hood, per the standard) so a pooled
  // execution can clear it while keeping the storage. (score, seq) pairs
  // are a total order — seq is unique — so pop order is independent of
  // heap layout.
  std::vector<Scored> heap_;
  std::vector<Candidate> candidates_;  // append-only per query; idx-stable
  EpochSet seen_;
  std::uint32_t next_seq_ = 0;

  std::uint32_t results_ = 0;
  ProbeCounters counters_;

  std::size_t parallel_;
  std::size_t resultless_slots_ = 0;
  std::size_t stalled_slots_ = 0;

  // Transport-driven slot state (see the slot-lifecycle section above).
  std::uint32_t slot_results_baseline_ = 0;
  std::size_t slot_probes_issued_ = 0;
  std::size_t slot_outstanding_ = 0;
  bool slot_creditless_ = false;
  bool slot_issuing_ = false;
  std::uint64_t token_ = 0;
};

}  // namespace guess
