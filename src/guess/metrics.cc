#include "guess/metrics.h"

namespace guess {

namespace {
double per_query(std::uint64_t value, std::uint64_t queries) {
  return queries == 0 ? 0.0
                      : static_cast<double>(value) /
                            static_cast<double>(queries);
}
}  // namespace

TransportCounters& TransportCounters::operator+=(
    const TransportCounters& other) {
  messages_sent += other.messages_sent;
  messages_lost += other.messages_lost;
  timeouts += other.timeouts;
  retransmits += other.retransmits;
  late_replies += other.late_replies;
  exchanges_failed += other.exchanges_failed;
  return *this;
}

TransportCounters TransportCounters::operator-(
    const TransportCounters& other) const {
  TransportCounters out;
  out.messages_sent = messages_sent - other.messages_sent;
  out.messages_lost = messages_lost - other.messages_lost;
  out.timeouts = timeouts - other.timeouts;
  out.retransmits = retransmits - other.retransmits;
  out.late_replies = late_replies - other.late_replies;
  out.exchanges_failed = exchanges_failed - other.exchanges_failed;
  return out;
}

RecoveryMetrics compute_recovery(const IntervalSeries& series,
                                 sim::Time fault_start, sim::Time fault_end,
                                 double epsilon) {
  RecoveryMetrics out;
  out.epsilon = epsilon;

  // Baseline: mean success over intervals that closed before the fault hit.
  double baseline_sum = 0.0;
  std::size_t baseline_n = 0;
  for (const IntervalSample& s : series) {
    if (s.end > fault_start) break;
    if (s.queries_completed == 0) continue;
    baseline_sum += s.success_rate();
    ++baseline_n;
  }
  // No pre-fault signal (fault at t=0, or interval wider than the lead-in):
  // fall back to perfect success so "recovered" means "fully healthy".
  out.baseline = baseline_n == 0 ? 1.0 : baseline_sum / baseline_n;

  double threshold = out.baseline - epsilon;
  std::size_t post_onset_n = 0;
  std::size_t post_onset_ok = 0;
  bool any_during = false;
  for (const IntervalSample& s : series) {
    if (s.end <= fault_start || s.queries_completed == 0) continue;
    double rate = s.success_rate();
    ++post_onset_n;
    if (rate >= threshold) ++post_onset_ok;
    if (!any_during || rate < out.min_during_fault) {
      out.min_during_fault = rate;
      any_during = true;
    }
    // Recovery is only credited to intervals lying wholly after the fault
    // window: a healthy interval *during* a partition (e.g. all queries
    // resolved within one side) is not the network healing.
    if (out.time_to_recovery < 0.0 && s.start >= fault_end &&
        rate >= threshold) {
      out.time_to_recovery = s.end - fault_start;
    }
  }
  if (!any_during) out.min_during_fault = out.baseline;
  out.availability =
      post_onset_n == 0
          ? 1.0
          : static_cast<double>(post_onset_ok) /
                static_cast<double>(post_onset_n);
  return out;
}

double ClassMetrics::unsatisfied_rate() const {
  if (queries_completed == 0) return 0.0;
  return 1.0 - static_cast<double>(queries_satisfied) /
                   static_cast<double>(queries_completed);
}

double ClassMetrics::probes_per_query() const {
  return per_query(probes.total(), queries_completed);
}

double SimulationResults::unsatisfied_rate() const {
  if (queries_completed == 0) return 0.0;
  return 1.0 - static_cast<double>(queries_satisfied) /
                   static_cast<double>(queries_completed);
}

double SimulationResults::probes_per_query() const {
  return per_query(probes.total(), queries_completed);
}

double SimulationResults::good_probes_per_query() const {
  return per_query(probes.good, queries_completed);
}

double SimulationResults::dead_probes_per_query() const {
  return per_query(probes.dead, queries_completed);
}

double SimulationResults::refused_probes_per_query() const {
  return per_query(probes.refused, queries_completed);
}

}  // namespace guess
