#include "guess/metrics.h"

namespace guess {

namespace {
double per_query(std::uint64_t value, std::uint64_t queries) {
  return queries == 0 ? 0.0
                      : static_cast<double>(value) /
                            static_cast<double>(queries);
}
}  // namespace

TransportCounters& TransportCounters::operator+=(
    const TransportCounters& other) {
  messages_sent += other.messages_sent;
  messages_lost += other.messages_lost;
  timeouts += other.timeouts;
  retransmits += other.retransmits;
  late_replies += other.late_replies;
  exchanges_failed += other.exchanges_failed;
  return *this;
}

TransportCounters TransportCounters::operator-(
    const TransportCounters& other) const {
  TransportCounters out;
  out.messages_sent = messages_sent - other.messages_sent;
  out.messages_lost = messages_lost - other.messages_lost;
  out.timeouts = timeouts - other.timeouts;
  out.retransmits = retransmits - other.retransmits;
  out.late_replies = late_replies - other.late_replies;
  out.exchanges_failed = exchanges_failed - other.exchanges_failed;
  return out;
}

double ClassMetrics::unsatisfied_rate() const {
  if (queries_completed == 0) return 0.0;
  return 1.0 - static_cast<double>(queries_satisfied) /
                   static_cast<double>(queries_completed);
}

double ClassMetrics::probes_per_query() const {
  return per_query(probes.total(), queries_completed);
}

double SimulationResults::unsatisfied_rate() const {
  if (queries_completed == 0) return 0.0;
  return 1.0 - static_cast<double>(queries_satisfied) /
                   static_cast<double>(queries_completed);
}

double SimulationResults::probes_per_query() const {
  return per_query(probes.total(), queries_completed);
}

double SimulationResults::good_probes_per_query() const {
  return per_query(probes.good, queries_completed);
}

double SimulationResults::dead_probes_per_query() const {
  return per_query(probes.dead, queries_completed);
}

double SimulationResults::refused_probes_per_query() const {
  return per_query(probes.refused, queries_completed);
}

}  // namespace guess
