#include "guess/config.h"

#include <cmath>

#include "common/check.h"

namespace guess {

const char* backend_name(SearchBackendId id) {
  switch (id) {
    case SearchBackendId::kGuess: return "guess";
    case SearchBackendId::kFlood: return "flood";
    case SearchBackendId::kIterative: return "iterative";
    case SearchBackendId::kOneHop: return "onehop";
    case SearchBackendId::kGossip: return "gossip";
  }
  GUESS_CHECK_MSG(false, "unknown SearchBackendId");
  return "?";
}

SearchBackendId parse_backend(const std::string& name) {
  if (name == "guess") return SearchBackendId::kGuess;
  if (name == "flood") return SearchBackendId::kFlood;
  if (name == "iterative") return SearchBackendId::kIterative;
  if (name == "onehop") return SearchBackendId::kOneHop;
  if (name == "gossip") return SearchBackendId::kGossip;
  GUESS_CHECK_MSG(false, "unknown backend '"
                             << name
                             << "' (expected guess | flood | iterative | "
                                "onehop | gossip)");
  return SearchBackendId::kGuess;
}

const SimulationConfig& SimulationConfig::validate() const {
  // Non-finite doubles sail through every range check below (NaN compares
  // false against everything), so reject them by name first.
  GUESS_CHECK_MSG(std::isfinite(system_.lifespan_multiplier),
                  "lifespan_multiplier must be finite");
  GUESS_CHECK_MSG(std::isfinite(system_.query_rate),
                  "query_rate must be finite");
  GUESS_CHECK_MSG(std::isfinite(system_.percent_bad_peers),
                  "percent_bad_peers must be finite");
  GUESS_CHECK_MSG(std::isfinite(system_.percent_selfish_peers),
                  "percent_selfish_peers must be finite");
  GUESS_CHECK_MSG(std::isfinite(transport_.loss),
                  "transport loss must be finite");
  GUESS_CHECK_MSG(std::isfinite(transport_.link_latency),
                  "transport link_latency must be finite");
  GUESS_CHECK_MSG(std::isfinite(transport_.probe_timeout),
                  "transport probe_timeout must be finite");
  GUESS_CHECK_MSG(std::isfinite(transport_.retry_backoff),
                  "transport retry_backoff must be finite");
  GUESS_CHECK_MSG(std::isfinite(transport_.max_backoff),
                  "transport max_backoff must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.warmup), "warmup must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.measure), "measure must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.metrics_interval),
                  "metrics_interval must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.health_sample_interval),
                  "health_sample_interval must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.connectivity_sample_interval),
                  "connectivity_sample_interval must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.offered_qps),
                  "offered_qps must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.slo), "slo must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.overload.target_failure_rate),
                  "overload target_failure_rate must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.overload.additive_increase),
                  "overload additive_increase must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.overload.multiplicative_decrease),
                  "overload multiplicative_decrease must be finite");
  GUESS_CHECK_MSG(std::isfinite(options_.overload.control_interval),
                  "overload control_interval must be finite");
  // System (Table 1).
  GUESS_CHECK_MSG(system_.network_size >= 2,
                  "network_size must be >= 2, got " << system_.network_size);
  GUESS_CHECK_MSG(system_.num_desired_results >= 1,
                  "num_desired_results must be >= 1");
  GUESS_CHECK_MSG(system_.lifespan_multiplier > 0.0,
                  "lifespan_multiplier must be > 0, got "
                      << system_.lifespan_multiplier);
  GUESS_CHECK_MSG(system_.query_rate >= 0.0,
                  "query_rate must be >= 0, got " << system_.query_rate);
  GUESS_CHECK_MSG(
      system_.percent_bad_peers >= 0.0 && system_.percent_bad_peers <= 100.0,
      "percent_bad_peers must be in [0, 100], got "
          << system_.percent_bad_peers);
  GUESS_CHECK_MSG(system_.percent_selfish_peers >= 0.0 &&
                      system_.percent_selfish_peers <= 100.0,
                  "percent_selfish_peers must be in [0, 100], got "
                      << system_.percent_selfish_peers);
  GUESS_CHECK_MSG(
      system_.percent_bad_peers + system_.percent_selfish_peers <= 100.0,
      "bad + selfish percentages exceed the population");
  GUESS_CHECK_MSG(system_.burst_min >= 1 &&
                      system_.burst_min <= system_.burst_max,
                  "query burst bounds must satisfy 1 <= min <= max");

  // Protocol (Table 2).
  GUESS_CHECK_MSG(protocol_.ping_interval > 0.0,
                  "ping_interval must be > 0, got "
                      << protocol_.ping_interval);
  GUESS_CHECK_MSG(protocol_.probe_interval > 0.0,
                  "probe_interval must be > 0, got "
                      << protocol_.probe_interval);
  GUESS_CHECK_MSG(protocol_.cache_size >= 1, "cache_size must be >= 1");
  GUESS_CHECK_MSG(protocol_.pong_size >= 1, "pong_size must be >= 1");
  GUESS_CHECK_MSG(protocol_.intro_prob >= 0.0 && protocol_.intro_prob <= 1.0,
                  "intro_prob must be in [0, 1], got "
                      << protocol_.intro_prob);
  GUESS_CHECK_MSG(protocol_.parallel_probes >= 1,
                  "parallel_probes must be >= 1");
  GUESS_CHECK_MSG(protocol_.backoff_duration >= 0.0,
                  "backoff_duration must be >= 0");

  // Transport (DESIGN.md §8).
  GUESS_CHECK_MSG(transport_.loss >= 0.0 && transport_.loss <= 1.0,
                  "transport loss must be in [0, 1], got "
                      << transport_.loss);
  GUESS_CHECK_MSG(transport_.probe_timeout > 0.0,
                  "transport probe_timeout must be > 0, got "
                      << transport_.probe_timeout);
  GUESS_CHECK_MSG(transport_.link_latency >= 0.0,
                  "transport link_latency must be >= 0, got "
                      << transport_.link_latency);
  GUESS_CHECK_MSG(transport_.retry_backoff >= 0.0,
                  "transport retry_backoff must be >= 0, got "
                      << transport_.retry_backoff);
  // Far above any sensible retry policy; catches negative values wrapped
  // through an unsigned cast (e.g. a mis-parsed --max-retries).
  GUESS_CHECK_MSG(transport_.max_retries <= 1000,
                  "transport max_retries must be <= 1000, got "
                      << transport_.max_retries);
  GUESS_CHECK_MSG(transport_.max_backoff > 0.0,
                  "transport max_backoff must be > 0, got "
                      << transport_.max_backoff);

  // Run control.
  GUESS_CHECK_MSG(options_.warmup >= 0.0, "warmup must be >= 0");
  GUESS_CHECK_MSG(options_.measure >= 0.0, "measure must be >= 0");
  GUESS_CHECK_MSG(options_.health_sample_interval > 0.0,
                  "health_sample_interval must be > 0");
  GUESS_CHECK_MSG(options_.connectivity_sample_interval > 0.0,
                  "connectivity_sample_interval must be > 0");
  GUESS_CHECK_MSG(options_.threads >= 0, "threads must be >= 0");
  GUESS_CHECK_MSG(options_.metrics_interval >= 0.0,
                  "metrics_interval must be >= 0, got "
                      << options_.metrics_interval);

  // Open-loop arrivals + overload control (DESIGN.md §13).
  GUESS_CHECK_MSG(options_.offered_qps >= 0.0,
                  "offered_qps must be >= 0, got " << options_.offered_qps);
  if (options_.arrival == sim::ArrivalMode::kOpen) {
    GUESS_CHECK_MSG(options_.offered_qps > 0.0,
                    "open-loop arrivals require offered_qps > 0 "
                    "(--offered-qps)");
  } else {
    GUESS_CHECK_MSG(options_.offered_qps == 0.0,
                    "offered_qps is set but arrival mode is closed; pass "
                    "--arrival=open");
    GUESS_CHECK_MSG(options_.overload.policy == OverloadPolicy::kNone,
                    "overload policies require open-loop arrivals "
                    "(--arrival=open)");
  }
  GUESS_CHECK_MSG(options_.slo > 0.0,
                  "slo must be > 0 seconds, got " << options_.slo);
  const OverloadParams& ol = options_.overload;
  GUESS_CHECK_MSG(ol.max_in_flight >= 1, "overload max_in_flight must be >= 1");
  GUESS_CHECK_MSG(ol.queue_capacity >= 1, "overload queue_capacity must be >= 1");
  GUESS_CHECK_MSG(ol.shed_watermark >= 1 &&
                      ol.shed_watermark <= ol.queue_capacity,
                  "overload shed_watermark must be in [1, queue_capacity]");
  GUESS_CHECK_MSG(ol.target_failure_rate >= 0.0 &&
                      ol.target_failure_rate <= 1.0,
                  "overload target_failure_rate must be in [0, 1], got "
                      << ol.target_failure_rate);
  GUESS_CHECK_MSG(ol.additive_increase > 0.0,
                  "overload additive_increase must be > 0");
  GUESS_CHECK_MSG(ol.multiplicative_decrease > 0.0 &&
                      ol.multiplicative_decrease < 1.0,
                  "overload multiplicative_decrease must be in (0, 1), got "
                      << ol.multiplicative_decrease);
  GUESS_CHECK_MSG(ol.min_window >= 1 && ol.min_window <= ol.max_window,
                  "overload windows must satisfy 1 <= min_window <= "
                  "max_window");
  GUESS_CHECK_MSG(ol.control_interval > 0.0,
                  "overload control_interval must be > 0, got "
                      << ol.control_interval);

  // Backend tuning blocks (only the selected backend reads its block, but
  // nonsense in any block is rejected up front — a config is one value).
  GUESS_CHECK_MSG(backends_.flood.target_degree >= 1,
                  "flood target_degree must be >= 1");
  GUESS_CHECK_MSG(backends_.flood.max_degree >= backends_.flood.target_degree,
                  "flood max_degree must be >= target_degree");
  GUESS_CHECK_MSG(backends_.flood.ttl >= 1, "flood ttl must be >= 1");
  GUESS_CHECK_MSG(backends_.flood.hop_delay >= 0.0,
                  "flood hop_delay must be >= 0");
  GUESS_CHECK_MSG(backends_.iterative.num_queries >= 1,
                  "iterative num_queries must be >= 1");
  for (std::size_t i = 1; i < backends_.iterative.schedule.size(); ++i) {
    GUESS_CHECK_MSG(backends_.iterative.schedule[i] >
                        backends_.iterative.schedule[i - 1],
                    "iterative schedule must be strictly increasing");
  }
  GUESS_CHECK_MSG(backends_.onehop.dissemination_delay >= 0.0,
                  "onehop dissemination_delay must be >= 0");
  GUESS_CHECK_MSG(backends_.gossip.gossip_interval > 0.0,
                  "gossip gossip_interval must be > 0");
  GUESS_CHECK_MSG(backends_.gossip.fanout >= 1, "gossip fanout must be >= 1");
  GUESS_CHECK_MSG(backends_.gossip.ads_per_exchange >= 1,
                  "gossip ads_per_exchange must be >= 1");
  GUESS_CHECK_MSG(backends_.gossip.knowledge_capacity >= 1,
                  "gossip knowledge_capacity must be >= 1");
  GUESS_CHECK_MSG(backends_.gossip.ad_ttl > 0.0, "gossip ad_ttl must be > 0");
  GUESS_CHECK_MSG(backends_.gossip.max_probes >= 1,
                  "gossip max_probes must be >= 1");
  GUESS_CHECK_MSG(backends_.gossip.probe_interval > 0.0,
                  "gossip probe_interval must be > 0");

  // Fault scenario (DESIGN.md §9).
  scenario_.validate();
  GUESS_CHECK_MSG(!scenario_.uses_degradation() ||
                      transport_.kind == TransportParams::Kind::kLossy,
                  "scenario degrades the transport but the transport is "
                  "synchronous; degrade windows require --loss (a lossy "
                  "transport)");
  return *this;
}

}  // namespace guess
