// A live Gnutella-style network: open bidirectional connections, churn with
// immediate neighbor repair, and TTL-flooded queries (§3 of the paper).
//
// This is the forwarding-based counterpart to guess::GuessNetwork, sharing
// the same substrates (simulator, churn model, content model, bursty query
// stream) so the §3 comparison can be made quantitatively on identical
// workloads: messages per query, satisfaction, response time, load skew.
//
// Modeling notes (the §3 differences the paper calls out):
//  * connections are stateful: a dying peer's neighbors notice immediately
//    and repair by connecting to a random live peer — state maintenance is
//    cheap and local, unlike GUESS's ping-based cache upkeep;
//  * queries are amplified: every transmission costs a message, duplicates
//    included, and the originator cannot adapt the extent to popularity.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "churn/churn_manager.h"
#include "common/rng.h"
#include "common/stats.h"
#include "content/content_model.h"
#include "content/query_stream.h"
#include "sim/simulator.h"

namespace guess::gnutella {

struct DynamicParams {
  std::size_t network_size = 1000;
  /// Connections each peer tries to keep open (Gnutella clients of the era
  /// defaulted to 4-8).
  std::size_t target_degree = 4;
  /// Hard connection cap — the §3.3 remedy against hub formation.
  std::size_t max_degree = 12;
  /// Flood TTL: overlay hops a query travels.
  std::size_t ttl = 4;
  /// One-hop forwarding latency in seconds (response time = hops × this).
  double hop_delay = 0.05;
  double lifespan_multiplier = 1.0;
  double query_rate = 9.26e-3;
  std::size_t num_desired_results = 1;
  content::ContentParams content;
  /// I.i.d. per-transmission loss probability (DESIGN.md §8 made available
  /// to flooding): a lost transmission is counted as sent but the receiver
  /// never processes or forwards it. 0 draws no randomness, so legacy runs
  /// are bitwise unaffected.
  double loss = 0.0;
  /// Closed-loop query clock: when false no peer schedules query bursts
  /// (open-loop mode — queries arrive only via submit_query).
  bool enable_queries = true;
};

/// What one flood query produced (submit_query's return; the open-loop
/// adapter turns this into an observer callback).
struct FloodQueryOutcome {
  bool satisfied = false;
  /// Modeled service time: first-result hop depth × hop_delay when
  /// satisfied, full TTL depth × hop_delay when not (the flood ran to
  /// extinction either way; an unsatisfied querier waited out the deepest
  /// hop).
  double response_time = 0.0;
};

struct DynamicResults {
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_satisfied = 0;
  std::uint64_t messages = 0;          ///< transmissions incl. duplicates
  std::uint64_t peers_reached = 0;     ///< sum over queries
  RunningStat response_time;           ///< first-result latency, satisfied
  SampleSet peer_loads;                ///< messages processed per peer
  std::uint64_t deaths = 0;
  std::uint64_t repairs = 0;           ///< connections re-established
  SampleSet query_reach;               ///< peers reached, one sample per query

  double unsatisfied_rate() const;
  double messages_per_query() const;
  double reach_per_query() const;
};

class DynamicOverlay {
 public:
  DynamicOverlay(DynamicParams params, sim::Simulator& simulator, Rng rng);
  ~DynamicOverlay();

  DynamicOverlay(const DynamicOverlay&) = delete;
  DynamicOverlay& operator=(const DynamicOverlay&) = delete;

  /// Build the initial population and wire the overlay. Call once.
  void initialize();

  /// Start counting queries/messages from now (end of warmup).
  void begin_measurement();

  /// Snapshot of the measured metrics (flushes live peers' message loads).
  DynamicResults results() const;

  /// Inject one flood query from `origin` (must be alive); runs through the
  /// normal BFS machinery. Used by the SearchBackend adapter and tests.
  FloodQueryOutcome submit_query(std::uint64_t origin, content::FileId file);

  /// Fault hooks (DESIGN.md §9): kill a uniform fraction of live peers with
  /// no respawn (the burst column's flash crowd departure), or join `count`
  /// fresh peers at once. Both draw from the overlay's own RNG.
  void mass_kill(double fraction);
  void mass_join(std::size_t count);

  const std::vector<std::uint64_t>& alive_peers() const { return alive_ids_; }
  const content::ContentModel& content() const { return content_; }

  // --- introspection ---
  std::size_t alive_count() const { return peers_.size(); }
  std::size_t degree(std::uint64_t peer) const;
  std::size_t largest_component() const;
  double mean_degree() const;
  std::size_t max_degree_seen() const;

 private:
  struct PeerState;
  using PeerId = std::uint64_t;

  PeerId spawn_peer(bool initial);
  void on_peer_death(PeerId id);
  void remove_peer(PeerId id, bool respawn);
  void connect_to_random(PeerState& peer, std::size_t wanted);
  bool add_link(PeerId a, PeerId b);
  void remove_link(PeerId a, PeerId b);
  void schedule_next_burst(PeerState& peer);
  FloodQueryOutcome run_query(PeerId origin, content::FileId file);
  std::uint64_t random_alive(PeerId exclude);

  DynamicParams params_;
  sim::Simulator& simulator_;
  Rng rng_;
  content::ContentModel content_;
  content::QueryStream query_stream_;
  std::unique_ptr<churn::ChurnManager> churn_;

  PeerId next_id_ = 0;
  std::unordered_map<PeerId, std::unique_ptr<PeerState>> peers_;
  std::vector<PeerId> alive_ids_;
  std::unordered_map<PeerId, std::size_t> alive_index_;

  bool measuring_ = false;
  DynamicResults results_;
  std::unordered_map<PeerId, std::uint64_t> dead_peer_loads_;
};

}  // namespace guess::gnutella
