// Gnutella-style overlay topologies (§3 of the paper).
//
// Two generators:
//  * random_topology — each peer opens `degree` connections to uniformly
//    random others (the degree-capped overlay the paper suggests is robust);
//  * power_law_topology — Barabási–Albert preferential attachment, the
//    topology that "naturally arises from peers' local connection
//    decisions" and is susceptible to fragmentation attacks (§3.3).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace guess::gnutella {

/// Simple undirected graph with adjacency lists; parallel edges and
/// self-loops are rejected at insertion.
class Topology {
 public:
  explicit Topology(std::size_t nodes);

  std::size_t nodes() const { return adjacency_.size(); }
  std::size_t edges() const { return edges_; }

  /// Insert an undirected edge; no-op (returns false) for self-loops and
  /// duplicates.
  bool add_edge(std::size_t a, std::size_t b);

  const std::vector<std::size_t>& neighbors(std::size_t node) const;
  std::size_t degree(std::size_t node) const;

  /// Largest connected component among nodes for which alive[n] is true
  /// (alive must have size() == nodes(); edges to dead nodes are ignored).
  std::size_t largest_component(const std::vector<char>& alive) const;

  /// Largest connected component over all nodes.
  std::size_t largest_component() const;

  /// Node indices sorted by descending degree — the targets of a
  /// fragmentation attack on highly connected peers.
  std::vector<std::size_t> nodes_by_degree() const;

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t edges_ = 0;
};

/// Each node opens `degree` connections to distinct random peers (resulting
/// node degrees ≈ 2×degree with small variance).
Topology random_topology(std::size_t nodes, std::size_t degree, Rng& rng);

/// Barabási–Albert preferential attachment with `links_per_node` edges per
/// arriving node; produces the power-law degree distribution measured on
/// Gnutella.
Topology power_law_topology(std::size_t nodes, std::size_t links_per_node,
                            Rng& rng);

}  // namespace guess::gnutella
