#include "gnutella/flood.h"

#include <deque>

#include "common/check.h"

namespace guess::gnutella {

namespace {
FloodResult flood_impl(const Topology& topology,
                       const baseline::StaticPopulation* population,
                       std::size_t origin, content::FileId file,
                       std::size_t ttl) {
  GUESS_CHECK(origin < topology.nodes());
  std::vector<char> seen(topology.nodes(), 0);
  std::deque<std::pair<std::size_t, std::size_t>> frontier;  // (node, depth)
  FloodResult out;
  seen[origin] = 1;
  out.peers_reached = 1;
  if (population != nullptr && file != content::kNonexistentFile &&
      population->library(origin).contains(file)) {
    ++out.results;
  }
  frontier.emplace_back(origin, 0);
  while (!frontier.empty()) {
    auto [node, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= ttl) continue;
    for (std::size_t next : topology.neighbors(node)) {
      ++out.messages;  // every transmission costs, duplicate or not
      if (seen[next]) continue;
      seen[next] = 1;
      ++out.peers_reached;
      if (population != nullptr && file != content::kNonexistentFile &&
          population->library(next).contains(file)) {
        ++out.results;
      }
      frontier.emplace_back(next, depth + 1);
    }
  }
  return out;
}
}  // namespace

FloodResult flood_query(const Topology& topology,
                        const baseline::StaticPopulation& population,
                        std::size_t origin, content::FileId file,
                        std::size_t ttl) {
  GUESS_CHECK(population.size() == topology.nodes());
  return flood_impl(topology, &population, origin, file, ttl);
}

FloodResult flood_reach(const Topology& topology, std::size_t origin,
                        std::size_t ttl) {
  return flood_impl(topology, nullptr, origin, content::kNonexistentFile,
                    ttl);
}

}  // namespace guess::gnutella
