#include "gnutella/dynamic_overlay.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/check.h"

namespace guess::gnutella {

double DynamicResults::unsatisfied_rate() const {
  if (queries_completed == 0) return 0.0;
  return 1.0 - static_cast<double>(queries_satisfied) /
                   static_cast<double>(queries_completed);
}

double DynamicResults::messages_per_query() const {
  return queries_completed == 0
             ? 0.0
             : static_cast<double>(messages) /
                   static_cast<double>(queries_completed);
}

double DynamicResults::reach_per_query() const {
  return queries_completed == 0
             ? 0.0
             : static_cast<double>(peers_reached) /
                   static_cast<double>(queries_completed);
}

struct DynamicOverlay::PeerState {
  PeerId id = 0;
  content::Library library;
  std::vector<PeerId> neighbors;
  std::uint64_t messages_processed = 0;
  sim::EventHandle burst_timer;

  bool connected_to(PeerId other) const {
    return std::find(neighbors.begin(), neighbors.end(), other) !=
           neighbors.end();
  }
};

DynamicOverlay::DynamicOverlay(DynamicParams params,
                               sim::Simulator& simulator, Rng rng)
    : params_(params),
      simulator_(simulator),
      rng_(std::move(rng)),
      content_(params.content),
      query_stream_(content::BurstParams{params.query_rate, 1, 5}) {
  GUESS_CHECK(params_.network_size > params_.target_degree + 1);
  GUESS_CHECK(params_.max_degree >= params_.target_degree);
  GUESS_CHECK(params_.loss >= 0.0 && params_.loss < 1.0);
  churn_ = std::make_unique<churn::ChurnManager>(
      simulator_, churn::LifetimeDistribution(params_.lifespan_multiplier),
      rng_.split(), [this](PeerId id) { on_peer_death(id); });
}

DynamicOverlay::~DynamicOverlay() = default;

void DynamicOverlay::initialize() {
  GUESS_CHECK_MSG(peers_.empty(), "initialize() called twice");
  for (std::size_t i = 0; i < params_.network_size; ++i) {
    spawn_peer(/*initial=*/true);
  }
  // Wire the initial overlay after all peers exist.
  for (PeerId id : alive_ids_) {
    PeerState& peer = *peers_.at(id);
    if (peer.neighbors.size() < params_.target_degree) {
      connect_to_random(peer,
                        params_.target_degree - peer.neighbors.size());
    }
  }
}

DynamicOverlay::PeerId DynamicOverlay::spawn_peer(bool initial) {
  PeerId id = next_id_++;
  auto peer = std::make_unique<PeerState>();
  peer->id = id;
  peer->library = content_.sample_peer_library(rng_);
  PeerState& ref = *peer;
  peers_.emplace(id, std::move(peer));
  alive_index_.emplace(id, alive_ids_.size());
  alive_ids_.push_back(id);
  if (initial) {
    churn_->register_peer_scaled(id, std::max(1e-6, rng_.uniform()));
  } else {
    churn_->register_peer(id);
    // A joining peer opens its connections right away (§3.2: joining is
    // simple — only the new neighbors update state).
    connect_to_random(ref, params_.target_degree);
  }
  schedule_next_burst(ref);
  return id;
}

void DynamicOverlay::on_peer_death(PeerId id) {
  remove_peer(id, /*respawn=*/true);
}

void DynamicOverlay::remove_peer(PeerId id, bool respawn) {
  PeerState* peer = peers_.at(id).get();
  peer->burst_timer.cancel();
  dead_peer_loads_.emplace(id, peer->messages_processed);
  // Neighbors see the connection drop and repair immediately (§3.2).
  std::vector<PeerId> neighbors = peer->neighbors;
  for (PeerId other : neighbors) remove_link(id, other);

  std::size_t pos = alive_index_.at(id);
  alive_index_.erase(id);
  if (pos != alive_ids_.size() - 1) {
    alive_ids_[pos] = alive_ids_.back();
    alive_index_[alive_ids_[pos]] = pos;
  }
  alive_ids_.pop_back();
  peers_.erase(id);
  if (measuring_) ++results_.deaths;

  for (PeerId other : neighbors) {
    auto it = peers_.find(other);
    if (it == peers_.end()) continue;
    if (it->second->neighbors.size() < params_.target_degree) {
      connect_to_random(*it->second, 1);
      if (measuring_) ++results_.repairs;
    }
  }
  if (respawn) spawn_peer(/*initial=*/false);
}

void DynamicOverlay::mass_kill(double fraction) {
  GUESS_CHECK(fraction >= 0.0 && fraction <= 1.0);
  auto count =
      static_cast<std::size_t>(fraction *
                               static_cast<double>(alive_ids_.size()));
  // Keep at least two peers so repair's random-neighbor draws terminate.
  if (alive_ids_.size() < count + 2) {
    count = alive_ids_.size() > 2 ? alive_ids_.size() - 2 : 0;
  }
  std::vector<std::size_t> picks =
      rng_.sample_indices(alive_ids_.size(), count);
  std::vector<PeerId> victims;
  victims.reserve(picks.size());
  for (std::size_t i : picks) victims.push_back(alive_ids_[i]);
  for (PeerId id : victims) {
    churn_->deschedule(id);
    remove_peer(id, /*respawn=*/false);
  }
}

void DynamicOverlay::mass_join(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) spawn_peer(/*initial=*/false);
}

std::uint64_t DynamicOverlay::random_alive(PeerId exclude) {
  for (;;) {
    PeerId id = alive_ids_[rng_.index(alive_ids_.size())];
    if (id != exclude) return id;
  }
}

bool DynamicOverlay::add_link(PeerId a, PeerId b) {
  if (a == b) return false;
  PeerState& pa = *peers_.at(a);
  PeerState& pb = *peers_.at(b);
  if (pa.connected_to(b)) return false;
  if (pa.neighbors.size() >= params_.max_degree ||
      pb.neighbors.size() >= params_.max_degree) {
    return false;
  }
  pa.neighbors.push_back(b);
  pb.neighbors.push_back(a);
  return true;
}

void DynamicOverlay::remove_link(PeerId a, PeerId b) {
  auto drop = [](PeerState& peer, PeerId other) {
    auto it = std::find(peer.neighbors.begin(), peer.neighbors.end(), other);
    if (it != peer.neighbors.end()) {
      *it = peer.neighbors.back();
      peer.neighbors.pop_back();
    }
  };
  auto ita = peers_.find(a);
  auto itb = peers_.find(b);
  if (ita != peers_.end()) drop(*ita->second, b);
  if (itb != peers_.end()) drop(*itb->second, a);
}

void DynamicOverlay::connect_to_random(PeerState& peer, std::size_t wanted) {
  std::size_t attempts = 0;
  std::size_t added = 0;
  // Bounded retries: the overlay may be degree-saturated.
  while (added < wanted && attempts < wanted * 20 &&
         alive_ids_.size() > 1) {
    ++attempts;
    if (add_link(peer.id, random_alive(peer.id))) ++added;
  }
}

void DynamicOverlay::schedule_next_burst(PeerState& peer) {
  if (!params_.enable_queries) return;
  PeerId id = peer.id;
  peer.burst_timer =
      simulator_.after(query_stream_.next_burst_gap(rng_), [this, id]() {
        auto it = peers_.find(id);
        if (it == peers_.end()) return;
        std::size_t burst = query_stream_.next_burst_size(rng_);
        for (std::size_t i = 0; i < burst; ++i) {
          run_query(id, content_.draw_query(rng_));
        }
        schedule_next_burst(*it->second);
      });
}

FloodQueryOutcome DynamicOverlay::run_query(PeerId origin,
                                            content::FileId file) {
  // Synchronous BFS flood: messages are counted per transmission,
  // duplicates included (the §3 amplification); response time is the hop
  // depth of the first result times the per-hop delay.
  std::uint64_t messages = 0;
  std::uint64_t reached = 1;
  std::uint32_t results = 0;
  std::size_t first_result_depth = 0;

  std::unordered_set<PeerId> seen{origin};
  std::deque<std::pair<PeerId, std::size_t>> frontier{{origin, 0}};
  PeerState& source = *peers_.at(origin);
  source.messages_processed += 1;
  if (file != content::kNonexistentFile && source.library.contains(file)) {
    ++results;
  }
  while (!frontier.empty()) {
    auto [node, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= params_.ttl) continue;
    for (PeerId next : peers_.at(node)->neighbors) {
      ++messages;
      // Lossy transmission: counted as sent, never received. Guarded so a
      // loss-free run draws no randomness here (bitwise legacy behavior).
      if (params_.loss > 0.0 && rng_.bernoulli(params_.loss)) continue;
      auto it = peers_.find(next);
      GUESS_CHECK_MSG(it != peers_.end(), "edge to dead peer");
      it->second->messages_processed += 1;
      if (!seen.insert(next).second) continue;
      ++reached;
      if (file != content::kNonexistentFile &&
          it->second->library.contains(file)) {
        if (results == 0) first_result_depth = depth + 1;
        ++results;
      }
      frontier.emplace_back(next, depth + 1);
    }
  }

  FloodQueryOutcome outcome;
  outcome.satisfied = results >= params_.num_desired_results;
  // first_result_depth is 0 when the origin's own library matched; an
  // unsatisfied query waited out the full TTL depth.
  outcome.response_time =
      outcome.satisfied
          ? static_cast<double>(first_result_depth) * params_.hop_delay
          : static_cast<double>(params_.ttl) * params_.hop_delay;

  if (!measuring_) return outcome;
  ++results_.queries_completed;
  results_.messages += messages;
  results_.peers_reached += reached;
  results_.query_reach.add(static_cast<double>(reached));
  if (outcome.satisfied) {
    ++results_.queries_satisfied;
    results_.response_time.add(outcome.response_time);
  }
  return outcome;
}

FloodQueryOutcome DynamicOverlay::submit_query(std::uint64_t origin,
                                               content::FileId file) {
  GUESS_CHECK_MSG(peers_.contains(origin), "submit_query from a dead peer");
  return run_query(origin, file);
}

void DynamicOverlay::begin_measurement() {
  measuring_ = true;
  dead_peer_loads_.clear();
}

DynamicResults DynamicOverlay::results() const {
  DynamicResults out = results_;
  for (const auto& [id, load] : dead_peer_loads_) {
    (void)id;
    out.peer_loads.add(static_cast<double>(load));
  }
  for (const auto& [id, peer] : peers_) {
    (void)id;
    out.peer_loads.add(static_cast<double>(peer->messages_processed));
  }
  return out;
}

std::size_t DynamicOverlay::degree(std::uint64_t peer) const {
  auto it = peers_.find(peer);
  GUESS_CHECK(it != peers_.end());
  return it->second->neighbors.size();
}

double DynamicOverlay::mean_degree() const {
  if (peers_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [id, peer] : peers_) {
    (void)id;
    total += static_cast<double>(peer->neighbors.size());
  }
  return total / static_cast<double>(peers_.size());
}

std::size_t DynamicOverlay::max_degree_seen() const {
  std::size_t best = 0;
  for (const auto& [id, peer] : peers_) {
    (void)id;
    best = std::max(best, peer->neighbors.size());
  }
  return best;
}

std::size_t DynamicOverlay::largest_component() const {
  if (alive_ids_.empty()) return 0;
  std::unordered_set<PeerId> visited;
  std::size_t best = 0;
  for (PeerId start : alive_ids_) {
    if (visited.contains(start)) continue;
    std::size_t count = 0;
    std::vector<PeerId> stack{start};
    visited.insert(start);
    while (!stack.empty()) {
      PeerId node = stack.back();
      stack.pop_back();
      ++count;
      for (PeerId next : peers_.at(node)->neighbors) {
        if (visited.insert(next).second) stack.push_back(next);
      }
    }
    best = std::max(best, count);
  }
  return best;
}

}  // namespace guess::gnutella
