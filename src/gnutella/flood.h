// TTL-limited flooding search over a Gnutella topology (§3).
//
// A query is broadcast to all neighbors, which forward it to all their
// neighbors, until the TTL expires. Every transmission is a message; peers
// suppress duplicates but the duplicate transmissions still cost bandwidth —
// the "amplification effect" that makes flooding expensive and DoS-friendly.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/static_population.h"
#include "content/types.h"
#include "gnutella/topology.h"

namespace guess::gnutella {

struct FloodResult {
  std::size_t peers_reached = 0;   ///< distinct peers that saw the query
  std::uint64_t messages = 0;      ///< transmissions incl. duplicates
  std::uint32_t results = 0;       ///< matches among reached peers
};

/// Flood from `origin` with the given TTL (TTL = number of overlay hops the
/// query travels; TTL 0 reaches only the origin).
FloodResult flood_query(const Topology& topology,
                        const baseline::StaticPopulation& population,
                        std::size_t origin, content::FileId file,
                        std::size_t ttl);

/// Reach/message statistics without content matching (protocol-only view).
FloodResult flood_reach(const Topology& topology, std::size_t origin,
                        std::size_t ttl);

}  // namespace guess::gnutella
