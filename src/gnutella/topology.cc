#include "gnutella/topology.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace guess::gnutella {

Topology::Topology(std::size_t nodes) : adjacency_(nodes) {
  GUESS_CHECK(nodes > 0);
}

bool Topology::add_edge(std::size_t a, std::size_t b) {
  GUESS_CHECK(a < nodes() && b < nodes());
  if (a == b) return false;
  auto& na = adjacency_[a];
  if (std::find(na.begin(), na.end(), b) != na.end()) return false;
  na.push_back(b);
  adjacency_[b].push_back(a);
  ++edges_;
  return true;
}

const std::vector<std::size_t>& Topology::neighbors(std::size_t node) const {
  GUESS_CHECK(node < nodes());
  return adjacency_[node];
}

std::size_t Topology::degree(std::size_t node) const {
  return neighbors(node).size();
}

std::size_t Topology::largest_component(
    const std::vector<char>& alive) const {
  GUESS_CHECK(alive.size() == nodes());
  std::vector<char> visited(nodes(), 0);
  std::vector<std::size_t> stack;
  std::size_t best = 0;
  for (std::size_t start = 0; start < nodes(); ++start) {
    if (visited[start] || !alive[start]) continue;
    std::size_t count = 0;
    stack.push_back(start);
    visited[start] = 1;
    while (!stack.empty()) {
      std::size_t node = stack.back();
      stack.pop_back();
      ++count;
      for (std::size_t next : adjacency_[node]) {
        if (!visited[next] && alive[next]) {
          visited[next] = 1;
          stack.push_back(next);
        }
      }
    }
    best = std::max(best, count);
  }
  return best;
}

std::size_t Topology::largest_component() const {
  return largest_component(std::vector<char>(nodes(), 1));
}

std::vector<std::size_t> Topology::nodes_by_degree() const {
  std::vector<std::size_t> order(nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return degree(a) > degree(b);
  });
  return order;
}

Topology random_topology(std::size_t nodes, std::size_t degree, Rng& rng) {
  GUESS_CHECK(degree >= 1);
  GUESS_CHECK(nodes > degree);
  Topology graph(nodes);
  for (std::size_t node = 0; node < nodes; ++node) {
    std::size_t added = 0;
    std::size_t attempts = 0;
    // A node may fail to place all links if it is already saturated with
    // incoming ones; bounded retries keep generation O(n·degree).
    while (added < degree && attempts < degree * 20) {
      ++attempts;
      if (graph.add_edge(node, rng.index(nodes))) ++added;
    }
  }
  return graph;
}

Topology power_law_topology(std::size_t nodes, std::size_t links_per_node,
                            Rng& rng) {
  GUESS_CHECK(links_per_node >= 1);
  GUESS_CHECK(nodes > links_per_node + 1);
  Topology graph(nodes);
  // Seed clique over the first links_per_node + 1 nodes.
  std::size_t seed = links_per_node + 1;
  for (std::size_t a = 0; a < seed; ++a) {
    for (std::size_t b = a + 1; b < seed; ++b) graph.add_edge(a, b);
  }
  // Preferential attachment: sample targets proportionally to degree by
  // drawing uniformly from the edge-endpoint list.
  std::vector<std::size_t> endpoints;
  endpoints.reserve(nodes * links_per_node * 2);
  for (std::size_t a = 0; a < seed; ++a) {
    for (std::size_t b : graph.neighbors(a)) {
      (void)b;
      endpoints.push_back(a);
    }
  }
  for (std::size_t node = seed; node < nodes; ++node) {
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < links_per_node && attempts < links_per_node * 50) {
      ++attempts;
      std::size_t target = endpoints[rng.index(endpoints.size())];
      if (graph.add_edge(node, target)) {
        endpoints.push_back(node);
        endpoints.push_back(target);
        ++added;
      }
    }
  }
  return graph;
}

}  // namespace guess::gnutella
