#include "search/gossip.h"

#include <algorithm>
#include <utility>

#include "churn/lifetime.h"
#include "common/check.h"

namespace guess::search {

namespace {
constexpr std::uint32_t kFreeSlot = 0xffffffffu;
}  // namespace

GossipBackend::GossipBackend(const SimulationConfig& config,
                             sim::Simulator& simulator, Rng rng)
    : config_(config),
      simulator_(simulator),
      rng_(std::move(rng)),
      content_(config.system().content),
      query_stream_(content::BurstParams{config.system().query_rate, 1, 5}) {
  const GossipBackendParams& tuning = config_.backends().gossip;
  GUESS_CHECK(config_.system().network_size >= 2);
  GUESS_CHECK(tuning.fanout < config_.system().network_size);
  churn_ = std::make_unique<churn::ChurnManager>(
      simulator_,
      churn::LifetimeDistribution(config_.system().lifespan_multiplier),
      rng_.split(), [this](std::uint64_t id) { on_peer_death(id); });
}

GossipBackend::~GossipBackend() = default;

void GossipBackend::bootstrap() {
  std::size_t n = config_.system().network_size;
  slots_.reserve(n + n / 4);
  alive_slots_.reserve(n + n / 4);
  alive_ids_.reserve(n + n / 4);
  // Fallback probing permutations; +1 leaves room to skip the origin.
  probe_order_.reserve(
      std::max(n, config_.backends().gossip.max_probes + 1));
  for (std::size_t i = 0; i < n; ++i) spawn_peer(/*initial=*/true);
}

bool GossipBackend::alive(std::uint64_t id) const {
  return id_to_slot_.find(id) != id_to_slot_.end();
}

std::uint32_t GossipBackend::slot_of(std::uint64_t id) const {
  auto it = id_to_slot_.find(id);
  GUESS_CHECK_MSG(it != id_to_slot_.end(), "peer " << id << " is not alive");
  return it->second;
}

std::uint64_t GossipBackend::spawn_peer(bool initial) {
  std::uint64_t id = next_id_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_.back().knowledge.reserve(
        config_.backends().gossip.knowledge_capacity);
  }
  PeerSlot& peer = slots_[slot];
  peer.id = id;
  peer.library = content_.sample_peer_library(rng_);
  peer.knowledge.clear();
  peer.rumor_cursor = 0;
  peer.partition_group =
      partition_ways_ > 0 ? static_cast<int>(rng_.index(
                                static_cast<std::size_t>(partition_ways_)))
                          : -1;

  if (alive_index_of_slot_.size() <= slot) {
    alive_index_of_slot_.resize(slots_.size(), 0);
  }
  alive_index_of_slot_[slot] = alive_slots_.size();
  alive_slots_.push_back(slot);
  alive_ids_.push_back(id);
  id_to_slot_.emplace(id, slot);

  if (initial) {
    // Start mid-session so deaths do not arrive in a synchronized wave.
    churn_->register_peer_scaled(id, std::max(1e-6, rng_.uniform()));
  } else {
    churn_->register_peer(id);
  }
  schedule_next_gossip(
      id, rng_.uniform(0.0, config_.backends().gossip.gossip_interval));
  schedule_next_burst(id);
  return id;
}

void GossipBackend::remove_peer(std::uint64_t id) {
  std::uint32_t slot = slot_of(id);
  id_to_slot_.erase(id);
  std::size_t index = alive_index_of_slot_[slot];
  std::uint32_t last_slot = alive_slots_.back();
  alive_slots_[index] = last_slot;
  alive_ids_[index] = alive_ids_.back();
  alive_index_of_slot_[last_slot] = index;
  alive_slots_.pop_back();
  alive_ids_.pop_back();
  slots_[slot].id = kFreeSlot;
  free_slots_.push_back(slot);
}

void GossipBackend::on_peer_death(std::uint64_t id) {
  remove_peer(id);
  // Constant population: the paper's model, shared by every backend.
  spawn_peer(/*initial=*/false);
}

void GossipBackend::schedule_next_gossip(std::uint64_t id,
                                         sim::Duration delay) {
  simulator_.after(delay, [this, id]() {
    if (!alive(id)) return;
    gossip_round(id);
    schedule_next_gossip(id, config_.backends().gossip.gossip_interval);
  });
}

void GossipBackend::schedule_next_burst(std::uint64_t id) {
  // Open-loop runs silence the per-peer burst clock; queries arrive only
  // through start_query.
  if (config_.open_loop()) return;
  simulator_.after(query_stream_.next_burst_gap(rng_), [this, id]() {
    if (!alive(id)) return;
    std::size_t burst = query_stream_.next_burst_size(rng_);
    for (std::size_t i = 0; i < burst; ++i) {
      if (!alive(id)) break;  // a mid-burst fault could have removed us
      run_query(id, content_.draw_query(rng_));
    }
    if (alive(id)) schedule_next_burst(id);
  });
}

double GossipBackend::leg_loss() const {
  double base = config_.transport().kind == TransportParams::Kind::kLossy
                    ? config_.transport().loss
                    : 0.0;
  return std::min(1.0, base + degrade_extra_loss_);
}

bool GossipBackend::severed(const PeerSlot& a, const PeerSlot& b) const {
  return partition_ways_ > 0 && a.partition_group != b.partition_group;
}

void GossipBackend::integrate_ad(PeerSlot& peer, const Ad& ad) {
  if (ad.provider == peer.id) return;
  if (peer.library.contains(ad.file)) return;  // can already serve it
  for (Ad& existing : peer.knowledge) {
    if (existing.file == ad.file && existing.provider == ad.provider) {
      existing.expires = std::max(existing.expires, ad.expires);
      existing.residual = std::max(existing.residual, ad.residual);
      return;
    }
  }
  if (peer.knowledge.size() < config_.backends().gossip.knowledge_capacity) {
    peer.knowledge.push_back(ad);
    return;
  }
  // Full: replace the entry closest to expiry (it carries the least value).
  std::size_t victim = 0;
  for (std::size_t i = 1; i < peer.knowledge.size(); ++i) {
    if (peer.knowledge[i].expires < peer.knowledge[victim].expires) {
      victim = i;
    }
  }
  peer.knowledge[victim] = ad;
}

std::size_t GossipBackend::send_ads(PeerSlot& from, PeerSlot& to,
                                    bool delivered) {
  const GossipBackendParams& tuning = config_.backends().gossip;
  sim::Time now = simulator_.now();
  std::size_t count = 0;

  // Fresh self-ad for one random own file: the rumor's point of origin.
  if (!from.library.empty()) {
    Ad ad;
    ad.file = from.library.files()[rng_.index(from.library.size())];
    ad.provider = from.id;
    ad.expires = now + tuning.ad_ttl;
    ad.residual = static_cast<std::uint32_t>(tuning.residual_pushes);
    if (delivered) integrate_ad(to, ad);
    ++count;
  }

  // Relay rumors with push budget left, scanning from a rotating cursor so
  // successive exchanges spread different cache regions.
  std::size_t scanned = 0;
  std::size_t size = from.knowledge.size();
  while (count < tuning.ads_per_exchange && scanned < size) {
    std::size_t i = (from.rumor_cursor + scanned) % size;
    ++scanned;
    Ad& entry = from.knowledge[i];
    if (entry.residual == 0 || now >= entry.expires) continue;
    --entry.residual;  // push-with-counter: the relay budget drains
    if (delivered) {
      Ad copy = entry;
      integrate_ad(to, copy);
    }
    ++count;
  }
  from.rumor_cursor = size == 0 ? 0 : (from.rumor_cursor + scanned) % size;

  if (measuring_) {
    ++stats_.gossip_legs;
    stats_.ads_sent += count;
  }
  return count;
}

void GossipBackend::gossip_round(std::uint64_t id) {
  if (alive_slots_.size() < 2) return;
  std::uint32_t slot = slot_of(id);
  const GossipBackendParams& tuning = config_.backends().gossip;
  double loss = leg_loss();
  for (std::size_t f = 0; f < tuning.fanout; ++f) {
    // One draw over the others: index < mine maps directly, >= mine shifts
    // past self.
    std::size_t my_index = alive_index_of_slot_[slot];
    std::size_t pick = rng_.index(alive_slots_.size() - 1);
    if (pick >= my_index) ++pick;
    PeerSlot& self = slots_[slot];
    PeerSlot& partner = slots_[alive_slots_[pick]];
    if (measuring_) ++stats_.gossip_exchanges;
    if (severed(self, partner)) {
      // The push leg is spent on a dead link; no pull comes back.
      send_ads(self, partner, /*delivered=*/false);
      continue;
    }
    bool push_ok = loss <= 0.0 || !rng_.bernoulli(loss);
    send_ads(self, partner, push_ok);
    if (!push_ok) continue;  // partner never learned of the exchange
    bool pull_ok = loss <= 0.0 || !rng_.bernoulli(loss);
    send_ads(partner, self, pull_ok);
  }
}

void GossipBackend::gossip_now(std::uint64_t id) { gossip_round(id); }

void GossipBackend::submit_query(std::uint64_t origin, content::FileId file) {
  run_query(origin, file);
}

GossipBackend::QueryOutcome GossipBackend::run_query(std::uint64_t origin,
                                                     content::FileId file) {
  const GossipBackendParams& tuning = config_.backends().gossip;
  std::uint32_t slot = slot_of(origin);
  PeerSlot& o = slots_[slot];
  sim::Time now = simulator_.now();
  auto desired =
      static_cast<std::uint32_t>(config_.system().num_desired_results);
  double loss = leg_loss();

  std::uint32_t found = 0;
  std::uint64_t probes = 0;
  std::uint64_t replies = 0;
  bool local_hit = false;

  // Tier 1: the origin's own library.
  if (o.library.contains(file)) {
    found = desired;
    local_hit = true;
  }

  // Tier 2: the knowledge cache. Expired and dead-provider ads are
  // discarded on access — the staleness accounting the bench reports.
  bool entered_fallback = false;
  if (found < desired) {
    std::size_t i = 0;
    while (i < o.knowledge.size() && found < desired &&
           probes < tuning.max_probes) {
      Ad& ad = o.knowledge[i];
      if (ad.file != file) {
        ++i;
        continue;
      }
      if (now >= ad.expires) {
        if (measuring_) ++stats_.stale_ads_expired;
        ad = o.knowledge.back();
        o.knowledge.pop_back();
        continue;
      }
      auto provider_it = id_to_slot_.find(ad.provider);
      if (provider_it == id_to_slot_.end()) {
        if (measuring_) ++stats_.stale_ads_dead;
        ad = o.knowledge.back();
        o.knowledge.pop_back();
        continue;
      }
      // Fetch from the advertised provider: one direct probe.
      ++probes;
      PeerSlot& provider = slots_[provider_it->second];
      bool ok = !severed(o, provider) &&
                (loss <= 0.0 || !rng_.bernoulli(loss));
      if (ok) {
        ++replies;
        ++found;
      }
      ++i;
    }
  }
  bool knowledge_hit = found >= desired && !local_hit;

  // Tier 3: fall back to probing random live peers, GUESS-style.
  if (found < desired && probes < tuning.max_probes &&
      alive_slots_.size() > 1) {
    entered_fallback = true;
    std::size_t budget =
        std::min<std::size_t>(tuning.max_probes - probes + 1,
                              alive_slots_.size());
    rng_.sample_indices_into(alive_slots_.size(), budget, probe_order_,
                             sample_scratch_);
    for (std::size_t pick : probe_order_) {
      if (found >= desired || probes >= tuning.max_probes) break;
      std::uint32_t target_slot = alive_slots_[pick];
      if (target_slot == slot) continue;
      ++probes;
      PeerSlot& target = slots_[target_slot];
      bool ok = !severed(o, target) &&
                (loss <= 0.0 || !rng_.bernoulli(loss));
      if (!ok) continue;
      ++replies;
      if (target.library.contains(file)) ++found;
    }
  }

  bool satisfied = found >= desired;
  QueryOutcome outcome;
  outcome.satisfied = satisfied;
  outcome.response_time = static_cast<double>(probes) *
                          tuning.probe_interval * degrade_latency_factor_;
  if (measuring_) {
    ++stats_.queries_completed;
    if (satisfied) ++stats_.queries_satisfied;
    if (local_hit) ++stats_.local_hits;
    if (knowledge_hit) ++stats_.knowledge_hits;
    if (entered_fallback) ++stats_.fallback_queries;
    stats_.probes += probes;
    stats_.probe_replies += replies;
    stats_.query_probes.add(static_cast<double>(probes));
    if (satisfied) stats_.response_time.add(outcome.response_time);
  }
  if (interval_width_ > 0.0) {
    ++interval_completed_;
    if (satisfied) ++interval_satisfied_;
    interval_probes_ += probes;
  }
  return outcome;
}

void GossipBackend::begin_measurement() {
  measuring_ = true;
  stats_ = GossipStats{};
  deaths_baseline_ = churn_->deaths();
}

void GossipBackend::start_query(Rng& rng, sim::Time issued) {
  GUESS_CHECK(!alive_ids_.empty());
  std::uint64_t origin = alive_ids_[rng.index(alive_ids_.size())];
  QueryOutcome outcome = run_query(origin, content_.draw_query(rng));
  if (observer_ != nullptr) {
    // Queries resolve synchronously; latency is the controller queueing
    // delay plus the modeled probe pacing time.
    observer_->on_query_complete(
        (simulator_.now() - issued) + outcome.response_time,
        outcome.satisfied);
  }
}

void GossipBackend::begin_intervals(sim::Duration width) {
  GUESS_CHECK(width > 0.0);
  interval_width_ = width;
  interval_start_ = simulator_.now();
  interval_completed_ = 0;
  interval_satisfied_ = 0;
  interval_probes_ = 0;
  interval_series_.clear();
}

void GossipBackend::sample_interval() {
  IntervalSample sample;
  sample.start = interval_start_;
  sample.end = simulator_.now();
  sample.queries_completed = interval_completed_;
  sample.queries_satisfied = interval_satisfied_;
  sample.probes = interval_probes_;
  sample.live_peers = alive_slots_.size();
  interval_series_.push_back(sample);
  interval_start_ = sample.end;
  interval_completed_ = 0;
  interval_satisfied_ = 0;
  interval_probes_ = 0;
}

SearchResults GossipBackend::collect() {
  stats_.deaths = churn_->deaths() - deaths_baseline_;
  for (std::uint32_t slot : alive_slots_) {
    stats_.knowledge_size.add(
        static_cast<double>(slots_[slot].knowledge.size()));
  }

  SearchResults out;
  out.backend = name();
  out.network_size = config_.system().network_size;
  out.queries_completed = stats_.queries_completed;
  out.queries_satisfied = stats_.queries_satisfied;
  out.probes = stats_.probes;
  out.query_messages = stats_.probes + stats_.probe_replies;
  out.maintenance_messages = stats_.gossip_legs;
  out.query_bytes =
      stats_.probes * (kWire.header + kWire.probe_payload) +
      stats_.probe_replies * (kWire.header + kWire.result_entry);
  out.maintenance_bytes = stats_.gossip_legs * kWire.header +
                          stats_.ads_sent * kWire.ad_entry;
  out.deaths = stats_.deaths;
  out.response_time = stats_.response_time;
  out.probe_samples = stats_.query_probes;
  out.interval_series = interval_series_;
  out.extra = stats_;
  return out;
}

std::size_t GossipBackend::knowledge_entries(std::uint64_t id) const {
  return slots_[slot_of(id)].knowledge.size();
}

bool GossipBackend::knows(std::uint64_t id, content::FileId file) const {
  const PeerSlot& peer = slots_[slot_of(id)];
  for (const Ad& ad : peer.knowledge) {
    if (ad.file == file) return true;
  }
  return false;
}

void GossipBackend::fault_mass_kill(double fraction) {
  GUESS_CHECK(fraction >= 0.0 && fraction <= 1.0);
  auto victims = static_cast<std::size_t>(
      fraction * static_cast<double>(alive_slots_.size()));
  if (victims == 0) return;
  GUESS_CHECK_MSG(victims < alive_slots_.size(),
                  "mass kill would empty the network");
  rng_.sample_indices_into(alive_slots_.size(), victims, probe_order_,
                           sample_scratch_);
  std::vector<std::uint64_t> ids;
  ids.reserve(victims);
  for (std::size_t index : probe_order_) ids.push_back(alive_ids_[index]);
  for (std::uint64_t id : ids) {
    churn_->deschedule(id);
    remove_peer(id);  // no replacement birth: the population stays reduced
  }
}

void GossipBackend::fault_mass_join(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) spawn_peer(/*initial=*/false);
}

void GossipBackend::fault_set_partition(int ways) {
  GUESS_CHECK(ways >= 2);
  partition_ways_ = ways;
  for (std::uint32_t slot : alive_slots_) {
    slots_[slot].partition_group = static_cast<int>(
        rng_.index(static_cast<std::size_t>(ways)));
  }
}

void GossipBackend::fault_clear_partition() { partition_ways_ = 0; }

void GossipBackend::fault_set_degradation(double extra_loss,
                                          double latency_factor) {
  GUESS_CHECK(extra_loss >= 0.0 && extra_loss <= 1.0);
  GUESS_CHECK(latency_factor >= 1.0);
  degrade_extra_loss_ = extra_loss;
  degrade_latency_factor_ = latency_factor;
}

void GossipBackend::fault_clear_degradation() {
  degrade_extra_loss_ = 0.0;
  degrade_latency_factor_ = 1.0;
}

std::unique_ptr<SearchBackend> make_gossip_backend(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng) {
  return std::make_unique<GossipBackend>(config, simulator, std::move(rng));
}

}  // namespace guess::search
