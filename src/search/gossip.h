// Gossip search — push/pull rumor-mongering of content advertisements
// (DESIGN.md §12.4), the first SearchBackend-native protocol.
//
// Each peer keeps a bounded local knowledge cache of content ads
// (file, provider, expiry, residual push budget). Every gossip_interval it
// exchanges up to ads_per_exchange ads with `fanout` random partners, push
// and pull legs both: fresh self-ads for its own library plus relayed
// rumors whose push budget has not drained (push-with-counter rumor
// mongering). Queries resolve from the origin's own library, then from its
// knowledge cache — expired and dead-provider entries are discarded on
// access and tallied as staleness — and only then fall back to directly
// probing random live peers, GUESS-style.
//
// The point on the paper's map: like GUESS, no forwarding and per-query
// cost control; unlike GUESS, the maintenance traffic carries *content*
// state rather than liveness state, so a warm network answers most queries
// in zero or one probe at the price of bounded staleness.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "churn/churn_manager.h"
#include "common/rng.h"
#include "common/stats.h"
#include "content/content_model.h"
#include "content/query_stream.h"
#include "search/backend.h"
#include "sim/simulator.h"

namespace guess::search {

/// Gossip's per-backend extras (the extension-slot payload:
/// `results.extra_as<GossipStats>()`). Counters cover the measurement
/// window only.
struct GossipStats {
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_satisfied = 0;
  std::uint64_t local_hits = 0;      ///< answered from the origin's library
  std::uint64_t knowledge_hits = 0;  ///< answered from the knowledge cache
  std::uint64_t fallback_queries = 0;///< had to probe at random
  std::uint64_t probes = 0;          ///< direct probes incl. knowledge fetch
  std::uint64_t probe_replies = 0;   ///< probes a live peer answered
  std::uint64_t stale_ads_expired = 0;  ///< TTL'd out on access
  std::uint64_t stale_ads_dead = 0;     ///< provider departed before use
  std::uint64_t gossip_exchanges = 0;   ///< partner meetings (2 legs each)
  std::uint64_t gossip_legs = 0;        ///< messages sent (push + pull legs)
  std::uint64_t ads_sent = 0;           ///< ad entries across all legs
  std::uint64_t deaths = 0;
  RunningStat knowledge_size;  ///< per-peer cache occupancy at collect()
  RunningStat response_time;   ///< satisfied queries, seconds
  SampleSet query_probes;      ///< per-query probes, one sample per query
};

std::unique_ptr<SearchBackend> make_gossip_backend(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng);

/// The concrete backend, public for the focused tests
/// (tests/search/gossip_test.cc drives TTL expiry and fan-out directly).
class GossipBackend final : public SearchBackend {
 public:
  GossipBackend(const SimulationConfig& config, sim::Simulator& simulator,
                Rng rng);
  ~GossipBackend() override;

  GossipBackend(const GossipBackend&) = delete;
  GossipBackend& operator=(const GossipBackend&) = delete;

  const char* name() const override { return "gossip"; }
  void bootstrap() override;
  void begin_measurement() override;
  void start_query(Rng& rng, sim::Time issued) override;
  void configure_open_loop(QueryObserver* observer) override {
    observer_ = observer;
  }
  SearchResults collect() override;
  std::size_t live_peers() const override { return alive_slots_.size(); }

  void begin_intervals(sim::Duration width) override;
  void sample_interval() override;

  // faults::FaultHost — kill/join/partition/degrade supported;
  // poison/attack reject (gossip has no adversary model yet).
  void fault_mass_kill(double fraction) override;
  void fault_mass_join(std::size_t count) override;
  void fault_set_partition(int ways) override;
  void fault_clear_partition() override;
  void fault_set_degradation(double extra_loss,
                             double latency_factor) override;
  void fault_clear_degradation() override;

  // --- introspection (tests) ---
  const std::vector<std::uint64_t>& alive_ids() const { return alive_ids_; }
  const content::ContentModel& content() const { return content_; }
  /// Knowledge-cache occupancy of a live peer (CHECKs liveness).
  std::size_t knowledge_entries(std::uint64_t id) const;
  /// True iff `id` holds a cached (not necessarily fresh) ad for `file`.
  bool knows(std::uint64_t id, content::FileId file) const;
  /// Run one gossip round for `id` immediately (tests drive rounds by hand).
  void gossip_now(std::uint64_t id);
  /// Resolve one query from `origin` for `file` through the normal path.
  void submit_query(std::uint64_t origin, content::FileId file);

 private:
  struct Ad {
    content::FileId file = 0;
    std::uint64_t provider = 0;
    sim::Time expires = 0.0;
    std::uint32_t residual = 0;  ///< remaining relays (push-with-counter)
  };

  struct PeerSlot {
    std::uint64_t id = 0;  ///< incarnation id; meaningless when free
    content::Library library;
    std::vector<Ad> knowledge;  ///< capacity reserved once, never grows
    std::size_t rumor_cursor = 0;  ///< rotating relay scan position
    int partition_group = -1;
  };

  std::uint64_t spawn_peer(bool initial);
  void on_peer_death(std::uint64_t id);
  void remove_peer(std::uint64_t id);
  std::uint32_t slot_of(std::uint64_t id) const;  ///< CHECKs liveness
  bool alive(std::uint64_t id) const;

  void schedule_next_gossip(std::uint64_t id, sim::Duration delay);
  void schedule_next_burst(std::uint64_t id);
  void gossip_round(std::uint64_t id);
  /// One directed leg: `from` pushes up to ads_per_exchange ads to `to`.
  /// Returns the number of ad entries sent (the leg is always billed; the
  /// receiver integrates only when the leg survives loss).
  std::size_t send_ads(PeerSlot& from, PeerSlot& to, bool delivered);
  void integrate_ad(PeerSlot& peer, const Ad& ad);
  struct QueryOutcome {
    bool satisfied = false;
    double response_time = 0.0;  ///< modeled probe pacing time
  };
  QueryOutcome run_query(std::uint64_t origin, content::FileId file);
  bool severed(const PeerSlot& a, const PeerSlot& b) const;
  double leg_loss() const;

  SimulationConfig config_;
  sim::Simulator& simulator_;
  Rng rng_;
  content::ContentModel content_;
  content::QueryStream query_stream_;
  std::unique_ptr<churn::ChurnManager> churn_;

  std::uint64_t next_id_ = 0;
  std::vector<PeerSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// Dense live set: alive_slots_[i] <-> alive_ids_[i]; swap-pop removal.
  std::vector<std::uint32_t> alive_slots_;
  std::vector<std::uint64_t> alive_ids_;
  std::vector<std::size_t> alive_index_of_slot_;
  /// id -> slot for the O(1) liveness checks queries and timers make
  /// (lookups allocate nothing; inserts/erases happen only on churn).
  std::unordered_map<std::uint64_t, std::uint32_t> id_to_slot_;

  bool measuring_ = false;
  GossipStats stats_;
  std::uint64_t deaths_baseline_ = 0;
  QueryObserver* observer_ = nullptr;

  // Fault state.
  int partition_ways_ = 0;  ///< 0 = no partition
  double degrade_extra_loss_ = 0.0;
  double degrade_latency_factor_ = 1.0;

  // Interval metrics (always on once begun; span warmup like GUESS's).
  sim::Duration interval_width_ = 0.0;
  sim::Time interval_start_ = 0.0;
  std::uint64_t interval_completed_ = 0;
  std::uint64_t interval_satisfied_ = 0;
  std::uint64_t interval_probes_ = 0;
  IntervalSeries interval_series_;

  // Steady-state scratch (reserved in bootstrap; hot paths never allocate).
  std::vector<std::size_t> probe_order_;
  std::vector<std::size_t> sample_scratch_;
};

}  // namespace guess::search
