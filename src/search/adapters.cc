// The four legacy silos as SearchBackend adapters (DESIGN.md §12.2).
//
// Each adapter's contract is bitwise equivalence: construction order, RNG
// consumption, event scheduling and collection replicate the legacy
// free-standing driver exactly, so the legacy results struct in the
// extension slot is identical to what the silo's own entry point produces
// (tests/search/backend_equivalence_test.cc asserts this field by field).
// The unified SearchResults mapping on top is pure arithmetic over those
// structs — it can never perturb a run.
#include "search/adapters.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/overlay_graph.h"
#include "baseline/iterative_deepening.h"
#include "baseline/static_population.h"
#include "common/check.h"
#include "content/content_model.h"
#include "gnutella/dynamic_overlay.h"
#include "guess/network.h"
#include "onehop/one_hop_dht.h"

namespace guess::search {

namespace {

// --- GUESS -----------------------------------------------------------------

class GuessBackend final : public SearchBackend {
 public:
  GuessBackend(const SimulationConfig& config, sim::Simulator& simulator,
               Rng rng)
      : config_(engine_config(config)),
        simulator_(simulator),
        network_(std::make_unique<GuessNetwork>(config_, simulator,
                                                std::move(rng))) {}

  const char* name() const override { return "guess"; }

  void bootstrap() override { network_->initialize(); }

  void begin_intervals(sim::Duration width) override {
    network_->begin_interval_metrics(width);
  }
  void sample_interval() override { network_->sample_interval(); }

  void begin_measurement() override {
    // The exact sampler schedule GuessSimulation::run() established:
    // measurement first, then an immediate cache-health sample, then the
    // periodic samplers phased to land inside the window.
    network_->begin_measurement();
    const SimulationOptions& options = config_.options();
    network_->sample_cache_health();
    simulator_.every(options.health_sample_interval,
                     options.health_sample_interval,
                     [this]() { network_->sample_cache_health(); });
    if (options.sample_connectivity) {
      simulator_.every(options.connectivity_sample_interval,
                       options.connectivity_sample_interval,
                       [this]() { network_->sample_connectivity(); });
    }
  }

  void start_query(Rng& rng, sim::Time issued) override {
    const std::vector<PeerId>& alive = network_->alive_ids();
    GUESS_CHECK(!alive.empty());
    PeerId origin = alive[rng.index(alive.size())];
    network_->submit_query(origin, network_->content().draw_query(rng),
                           issued);
  }

  void configure_open_loop(QueryObserver* observer) override {
    // The engine's own query clock is already off (engine_config); every
    // query now enters via start_query and reports back to the observer.
    network_->set_query_observer(observer);
  }

  TransportCounters transport_counters() const override {
    return network_->transport().counters();
  }

  void visit_open_queries(
      const std::function<void(sim::Time)>& visit) const override {
    network_->visit_open_queries(visit);
  }

  SearchResults collect() override {
    const SimulationOptions& options = config_.options();
    if (options.sample_connectivity) network_->sample_connectivity();
    SimulationResults legacy = network_->collect_results();
    legacy.measure_duration = options.measure;
    if (options.sample_connectivity) {
      // End-of-run snapshot, including the strong component the one-way
      // pointer structure (§2.1) makes interesting.
      analysis::OverlayGraph graph;
      for (PeerId id : network_->alive_ids()) graph.add_node(id);
      network_->visit_live_edges(
          [&](PeerId from, PeerId to) { graph.add_edge(from, to); });
      legacy.final_largest_component = graph.largest_weak_component();
      legacy.final_largest_strong_component =
          graph.largest_strong_component();
    }

    SearchResults out;
    out.backend = name();
    out.network_size = legacy.network_size;
    out.queries_completed = legacy.queries_completed;
    out.queries_satisfied = legacy.queries_satisfied;
    out.probes = legacy.probes.total();
    // Request per probe; dead targets never reply.
    std::uint64_t replies = legacy.probes.good + legacy.probes.refused;
    out.query_messages = out.probes + replies;
    std::uint64_t pongs = legacy.pings_sent - legacy.pings_to_dead;
    out.maintenance_messages = legacy.pings_sent + pongs;
    std::size_t pong_size = config_.protocol().pong_size;
    out.query_bytes =
        out.probes * (kWire.header + kWire.probe_payload) +
        legacy.probes.good *
            (kWire.header + kWire.result_entry + pong_size * kWire.ad_entry) +
        legacy.probes.refused * kWire.header;
    out.maintenance_bytes =
        legacy.pings_sent * (kWire.header + kWire.probe_payload) +
        pongs * (kWire.header + pong_size * kWire.ad_entry);
    out.deaths = legacy.deaths;
    out.response_time = legacy.response_time;
    out.probe_samples = legacy.query_probes;
    out.interval_series = legacy.interval_series;
    out.extra = std::move(legacy);
    return out;
  }

  std::size_t live_peers() const override { return network_->alive_count(); }

  // FaultHost: GUESS supports every action — forward to the network.
  void fault_mass_kill(double fraction) override {
    network_->fault_mass_kill(fraction);
  }
  void fault_mass_join(std::size_t count) override {
    network_->fault_mass_join(count);
  }
  void fault_set_partition(int ways) override {
    network_->fault_set_partition(ways);
  }
  void fault_clear_partition() override { network_->fault_clear_partition(); }
  void fault_set_degradation(double extra_loss,
                             double latency_factor) override {
    network_->fault_set_degradation(extra_loss, latency_factor);
  }
  void fault_clear_degradation() override {
    network_->fault_clear_degradation();
  }
  void fault_set_poisoning(bool active) override {
    network_->fault_set_poisoning(active);
  }
  void fault_start_attack(faults::AttackKind kind, double fraction) override {
    network_->fault_start_attack(kind, fraction);
  }
  void fault_stop_attack(faults::AttackKind kind) override {
    network_->fault_stop_attack(kind);
  }

 private:
  /// Open-loop runs silence the engine's closed-loop burst clock; queries
  /// arrive only through start_query. Closed-loop configs pass through
  /// untouched (bitwise legacy equivalence).
  static SimulationConfig engine_config(SimulationConfig config) {
    if (config.open_loop()) config.enable_queries(false);
    return config;
  }

  SimulationConfig config_;
  sim::Simulator& simulator_;
  std::unique_ptr<GuessNetwork> network_;
};

// --- Gnutella flooding -----------------------------------------------------

class FloodBackend final : public SearchBackend {
 public:
  FloodBackend(const SimulationConfig& config, sim::Simulator& simulator,
               Rng rng)
      : simulator_(simulator) {
    const SystemParams& system = config.system();
    const FloodBackendParams& tuning = config.backends().flood;
    gnutella::DynamicParams params;
    params.network_size = system.network_size;
    params.target_degree = tuning.target_degree;
    params.max_degree = tuning.max_degree;
    params.ttl = tuning.ttl;
    params.hop_delay = tuning.hop_delay;
    params.lifespan_multiplier = system.lifespan_multiplier;
    params.query_rate = system.query_rate;
    params.num_desired_results = system.num_desired_results;
    params.content = system.content;
    if (config.transport().kind == TransportParams::Kind::kLossy) {
      params.loss = config.transport().loss;
    }
    params.enable_queries = !config.open_loop();
    overlay_ = std::make_unique<gnutella::DynamicOverlay>(params, simulator,
                                                          std::move(rng));
  }

  const char* name() const override { return "flood"; }
  void bootstrap() override { overlay_->initialize(); }
  void begin_measurement() override { overlay_->begin_measurement(); }

  void start_query(Rng& rng, sim::Time issued) override {
    const std::vector<std::uint64_t>& alive = overlay_->alive_peers();
    GUESS_CHECK(!alive.empty());
    std::uint64_t origin = alive[rng.index(alive.size())];
    gnutella::FloodQueryOutcome outcome = overlay_->submit_query(
        origin, overlay_->content().draw_query(rng));
    if (observer_ != nullptr) {
      // The flood runs synchronously inside submit_query; the query's
      // latency is its controller queueing delay plus the modeled hop time.
      observer_->on_query_complete(
          (simulator_.now() - issued) + outcome.response_time,
          outcome.satisfied);
    }
  }

  void configure_open_loop(QueryObserver* observer) override {
    observer_ = observer;
  }

  void fault_mass_kill(double fraction) override {
    overlay_->mass_kill(fraction);
  }
  void fault_mass_join(std::size_t count) override {
    overlay_->mass_join(count);
  }

  SearchResults collect() override {
    gnutella::DynamicResults legacy = overlay_->results();
    SearchResults out;
    out.backend = name();
    out.network_size = overlay_->alive_count();
    out.queries_completed = legacy.queries_completed;
    out.queries_satisfied = legacy.queries_satisfied;
    out.probes = legacy.peers_reached;
    // Flooding's legacy "messages" are the forward transmissions, duplicates
    // included (§3 amplification) — the unified query_messages.
    out.query_messages = legacy.messages;
    out.maintenance_messages = 2 * legacy.repairs;  // connect handshakes
    out.query_bytes =
        legacy.messages * (kWire.header + kWire.probe_payload);
    out.maintenance_bytes = out.maintenance_messages * kWire.header;
    out.deaths = legacy.deaths;
    out.response_time = legacy.response_time;
    out.probe_samples = legacy.query_reach;
    out.extra = std::move(legacy);
    return out;
  }

  std::size_t live_peers() const override { return overlay_->alive_count(); }

 private:
  sim::Simulator& simulator_;
  std::unique_ptr<gnutella::DynamicOverlay> overlay_;
  QueryObserver* observer_ = nullptr;
};

// --- Iterative deepening (static analytic baseline) ------------------------

class IterativeBackend final : public SearchBackend {
 public:
  IterativeBackend(const SimulationConfig& config, sim::Simulator& simulator,
                   Rng rng)
      : config_(config), simulator_(simulator), rng_(std::move(rng)) {}

  const char* name() const override { return "iterative"; }

  void begin_measurement() override { measuring_ = true; }

  void bootstrap() override {
    // The legacy Figure 8 driver's exact construction order: the content
    // model, then the population drawn from the backend's RNG.
    model_ = std::make_unique<content::ContentModel>(
        config_.system().content);
    population_ = std::make_unique<baseline::StaticPopulation>(
        *model_, config_.system().network_size, rng_);
  }

  void start_query(Rng& rng, sim::Time issued) override {
    // One extra Monte-Carlo query, outside the batch (extra accumulators so
    // the legacy batch result in the extension slot stays untouched).
    // Schedule rings are clamped to the current population: a mass kill can
    // shrink it below the deepest ring (no-op clamps when it hasn't).
    std::vector<std::size_t> schedule = resolved_schedule();
    content::FileId file = model_->draw_query(rng);
    std::size_t deepest = std::min(schedule.back(), population_->size());
    std::vector<std::size_t> order =
        rng.sample_indices(population_->size(), deepest);
    std::uint32_t found = 0;
    std::size_t probed = 0;
    bool satisfied = false;
    auto desired =
        static_cast<std::uint32_t>(config_.system().num_desired_results);
    for (std::size_t ring : schedule) {
      ring = std::min(ring, order.size());
      if (ring <= probed) continue;
      found += population_->results_in_prefix(file, order, probed, ring);
      probed = ring;
      if (found >= desired) {
        satisfied = true;
        break;
      }
    }
    // Like the other silos, only measurement-window queries are tallied
    // (warmup queries still run, for a warmed controller).
    if (measuring_) {
      ++extra_completed_;
      if (satisfied) ++extra_satisfied_;
      extra_probes_ += probed;
      extra_samples_.add(static_cast<double>(probed));
    }
    if (observer_ != nullptr) {
      // The probe walk is analytic (instantaneous): the query's latency is
      // its controller queueing delay.
      observer_->on_query_complete(simulator_.now() - issued, satisfied);
    }
  }

  void configure_open_loop(QueryObserver* observer) override {
    observer_ = observer;
  }

  void fault_mass_kill(double fraction) override {
    auto count = static_cast<std::size_t>(
        fraction * static_cast<double>(population_->size()));
    population_->remove_random(count, rng_);
  }
  void fault_mass_join(std::size_t count) override {
    population_->add_random(*model_, count, rng_);
  }

  SearchResults collect() override {
    if (config_.open_loop()) {
      // Open-loop runs measure only the observer-driven queries; running the
      // legacy fixed-size batch on top would double the workload without
      // arriving through the controller.
      SearchResults out;
      out.backend = name();
      out.network_size = population_->size();
      out.queries_completed = extra_completed_;
      out.queries_satisfied = extra_satisfied_;
      out.probes = extra_probes_;
      out.query_messages = 2 * out.probes;
      out.query_bytes = out.probes * (2 * kWire.header + kWire.probe_payload +
                                      kWire.result_entry);
      SampleSet samples;
      for (double v : extra_samples_.values()) samples.add(v);
      out.probe_samples = std::move(samples);
      return out;
    }
    std::vector<std::size_t> schedule = resolved_schedule();
    for (std::size_t& ring : schedule) {
      ring = std::min(ring, population_->size());
    }
    std::size_t num_queries = config_.backends().iterative.num_queries;
    SampleSet samples;
    baseline::DeepeningResult legacy = baseline::evaluate_iterative_deepening(
        *population_, *model_, schedule, num_queries,
        static_cast<std::uint32_t>(config_.system().num_desired_results),
        rng_, &samples);

    SearchResults out;
    out.backend = name();
    out.network_size = population_->size();
    auto n = static_cast<double>(num_queries);
    out.queries_completed = num_queries + extra_completed_;
    out.queries_satisfied =
        num_queries -
        static_cast<std::uint64_t>(
            std::llround(legacy.unsatisfied_rate * n)) +
        extra_satisfied_;
    out.probes =
        static_cast<std::uint64_t>(std::llround(legacy.avg_cost * n)) +
        extra_probes_;
    // Every probed peer is live (static population) and replies.
    out.query_messages = 2 * out.probes;
    out.query_bytes =
        out.probes * (2 * kWire.header + kWire.probe_payload +
                      kWire.result_entry);
    for (double v : extra_samples_.values()) samples.add(v);
    out.probe_samples = std::move(samples);
    out.extra = legacy;
    return out;
  }

  std::size_t live_peers() const override {
    return population_ == nullptr ? 0 : population_->size();
  }

 private:
  std::vector<std::size_t> resolved_schedule() const {
    const IterativeBackendParams& tuning = config_.backends().iterative;
    return tuning.schedule.empty()
               ? baseline::default_schedule(config_.system().network_size)
               : tuning.schedule;
  }

  SimulationConfig config_;
  sim::Simulator& simulator_;
  Rng rng_;
  std::unique_ptr<content::ContentModel> model_;
  std::unique_ptr<baseline::StaticPopulation> population_;
  QueryObserver* observer_ = nullptr;
  bool measuring_ = false;
  std::uint64_t extra_completed_ = 0;
  std::uint64_t extra_satisfied_ = 0;
  std::uint64_t extra_probes_ = 0;
  SampleSet extra_samples_;
};

// --- One-hop DHT -----------------------------------------------------------

class OneHopBackend final : public SearchBackend {
 public:
  OneHopBackend(const SimulationConfig& config, sim::Simulator& simulator,
                Rng rng)
      : simulator_(simulator) {
    const SystemParams& system = config.system();
    onehop::OneHopParams params;
    params.network_size = system.network_size;
    params.lifespan_multiplier = system.lifespan_multiplier;
    params.lookup_rate = system.query_rate;
    params.dissemination_delay = config.backends().onehop.dissemination_delay;
    if (config.transport().kind == TransportParams::Kind::kLossy) {
      params.loss = config.transport().loss;
    }
    params.enable_lookups = !config.open_loop();
    network_size_ = system.network_size;
    dht_ = std::make_unique<onehop::OneHopDht>(params, simulator,
                                               std::move(rng));
  }

  const char* name() const override { return "onehop"; }
  void bootstrap() override { dht_->initialize(); }
  void begin_measurement() override { dht_->begin_measurement(); }

  void start_query(Rng& rng, sim::Time issued) override {
    // The DHT draws keys from its own generator (legacy API).
    (void)rng;
    bool resolved = dht_->lookup_random_key();
    if (observer_ != nullptr) {
      // Lookups resolve synchronously (probe latency is a probe count in
      // this silo, not simulated time): the query's latency is its
      // controller queueing delay.
      observer_->on_query_complete(simulator_.now() - issued, resolved);
    }
  }

  void configure_open_loop(QueryObserver* observer) override {
    observer_ = observer;
  }

  void fault_mass_kill(double fraction) override {
    dht_->mass_kill(fraction);
  }
  void fault_mass_join(std::size_t count) override {
    dht_->mass_join(count);
  }

  SearchResults collect() override {
    onehop::OneHopResults legacy = dht_->results();
    SearchResults out;
    out.backend = name();
    out.network_size = network_size_;
    // Naming normalization: a lookup is a completed query; exact-match
    // lookups always resolve to the key's owner, so every completed lookup
    // is satisfied (the silo has no "unsatisfied" notion).
    out.queries_completed = legacy.lookups;
    out.queries_satisfied = legacy.lookups;
    out.probes =
        static_cast<std::uint64_t>(std::llround(legacy.probes_per_lookup.sum()));
    // Timed-out probes (departed or lossy targets) never reply.
    out.query_messages = 2 * out.probes - legacy.timeouts;
    // [1]'s defining overhead: every membership event reaches every peer.
    out.maintenance_messages =
        legacy.membership_events * static_cast<std::uint64_t>(network_size_);
    out.query_bytes =
        out.probes * (kWire.header + kWire.probe_payload) +
        (out.probes - legacy.timeouts) * (kWire.header + kWire.result_entry);
    out.maintenance_bytes =
        out.maintenance_messages * (kWire.header + kWire.membership_entry);
    out.deaths = legacy.deaths;
    out.probe_samples = legacy.lookup_probes;
    out.extra = legacy;
    return out;
  }

  std::size_t live_peers() const override { return dht_->alive_count(); }

 private:
  sim::Simulator& simulator_;
  std::unique_ptr<onehop::OneHopDht> dht_;
  QueryObserver* observer_ = nullptr;
  std::size_t network_size_ = 0;
};

}  // namespace

std::unique_ptr<SearchBackend> make_guess_backend(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng) {
  return std::make_unique<GuessBackend>(config, simulator, std::move(rng));
}

std::unique_ptr<SearchBackend> make_flood_backend(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng) {
  return std::make_unique<FloodBackend>(config, simulator, std::move(rng));
}

std::unique_ptr<SearchBackend> make_iterative_backend(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng) {
  return std::make_unique<IterativeBackend>(config, simulator,
                                            std::move(rng));
}

std::unique_ptr<SearchBackend> make_onehop_backend(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng) {
  return std::make_unique<OneHopBackend>(config, simulator, std::move(rng));
}

}  // namespace guess::search
