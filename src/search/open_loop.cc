#include "search/open_loop.h"

#include <algorithm>

#include "common/check.h"

namespace guess::search {
namespace {

// Salts decorrelating the driver's RNG streams from the backend's (which is
// seeded with the raw config seed): attaching the open-loop driver must not
// perturb a single backend draw.
constexpr std::uint64_t kArrivalSeedSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kWorkloadSeedSalt = 0x6a09e667f3bcc909ull;

}  // namespace

OpenLoopDriver::OpenLoopDriver(const SimulationConfig& config,
                               sim::Simulator& simulator,
                               SearchBackend& backend)
    : simulator_(simulator),
      backend_(backend),
      controller_(config.options().overload),
      arrivals_(simulator, config.options().arrival_dist,
                config.options().offered_qps,
                Rng(config.seed() ^ kArrivalSeedSalt)),
      workload_rng_(config.seed() ^ kWorkloadSeedSalt),
      policy_(config.options().overload.policy),
      slo_(config.options().slo),
      control_interval_(config.options().overload.control_interval),
      interval_width_(config.options().metrics_interval) {
  stats_.open_loop = true;
  stats_.policy = policy_;
  stats_.offered_qps = config.options().offered_qps;
  stats_.slo = slo_;
}

void OpenLoopDriver::start() {
  backend_.configure_open_loop(this);
  arrivals_.start([this] { on_arrival(); });
  if (policy_ == OverloadPolicy::kBackpressure) {
    simulator_.every(control_interval_, control_interval_,
                     ControlTickFired{this});
  }
}

void OpenLoopDriver::begin_measurement() { measuring_ = true; }

void OpenLoopDriver::on_arrival() {
  if (measuring_) ++stats_.arrivals;
  ++acc_.arrivals;
  AdmitDecision decision = controller_.on_arrival(simulator_.now());
  if (decision.shed > 0) {
    // One query left the system via the shedding watermark — either the
    // oldest queued entry (making room for this arrival) or the arrival
    // itself (shed_oldest == false, reported as kReject + shed).
    if (measuring_) ++stats_.shed;
    ++acc_.shed;
  }
  switch (decision.action) {
    case AdmitAction::kStart:
      launch(simulator_.now());
      break;
    case AdmitAction::kQueue:
      break;
    case AdmitAction::kReject:
      if (decision.shed == 0) {
        if (measuring_) ++stats_.rejected;
        ++acc_.rejected;
      }
      break;
  }
}

void OpenLoopDriver::pump() {
  if (pumping_) return;
  pumping_ = true;
  sim::Time issue = 0.0;
  while (controller_.try_start(&issue)) launch(issue);
  pumping_ = false;
}

void OpenLoopDriver::launch(sim::Time issued) {
  if (measuring_) ++stats_.admitted;
  // Synchronous backends complete the query inside this call; pump's
  // re-entrancy guard keeps the resulting on_query_complete -> pump cascade
  // from recursing.
  backend_.start_query(workload_rng_, issued);
}

void OpenLoopDriver::on_query_complete(double latency, bool satisfied) {
  controller_.on_release();
  ++acc_.completed;
  if (satisfied) ++acc_.satisfied;
  bool within_slo = satisfied && latency <= slo_;
  if (within_slo) ++acc_.slo_ok;
  if (measuring_) {
    ++stats_.completed;
    if (satisfied) ++stats_.satisfied;
    if (within_slo) ++stats_.slo_ok;
    stats_.latency.add(latency);
  }
  pump();
}

void OpenLoopDriver::on_query_abandoned(double age) {
  (void)age;
  controller_.on_release();
  if (measuring_) ++stats_.abandoned;
  // The backend is mid-removal of the dead origin; starting new work from
  // inside its teardown could route a query to the half-removed peer. Defer
  // the pump to a zero-delay event (idempotent; one per abandonment is
  // harmless).
  static_assert(sim::EventQueue::Callback::stores_inline<PumpFired>(),
                "pump thunk must not allocate");
  simulator_.after(0.0, PumpFired{this});
}

void OpenLoopDriver::control_tick() {
  TransportCounters current = backend_.transport_counters();
  TransportCounters delta = current - last_transport_;
  last_transport_ = current;
  double failure_rate =
      delta.messages_sent == 0
          ? 0.0
          : static_cast<double>(delta.timeouts + delta.exchanges_failed) /
                static_cast<double>(delta.messages_sent);
  controller_.tick(failure_rate);
  pump();
}

void OpenLoopDriver::sample_interval() {
  if (interval_width_ <= 0.0) return;
  IntervalSample sample;
  sample.start = interval_start_;
  sample.end = simulator_.now();
  sample.live_peers = backend_.live_peers();
  sample.queries_completed = acc_.completed;
  sample.queries_satisfied = acc_.satisfied;
  sample.arrivals = acc_.arrivals;
  sample.rejected = acc_.rejected;
  sample.shed = acc_.shed;
  sample.slo_ok = acc_.slo_ok;
  interval_rows_.push_back(sample);
  acc_ = IntervalAcc{};
  interval_start_ = sample.end;
}

void OpenLoopDriver::finalize(SearchResults& out) {
  // Census everything still open: queued in the controller or running in
  // the backend. Each is billed its current age into the latency histogram
  // (a censored observation — the query would take at least this long), so
  // a baseline that diverges past saturation cannot hide its backlog by
  // never finishing it.
  sim::Time end = simulator_.now();
  sim::Time issue = 0.0;
  while (controller_.drain_one(&issue)) {
    ++stats_.open_at_close;
    stats_.latency.add(end - issue);
  }
  backend_.visit_open_queries([&](sim::Time issued) {
    ++stats_.open_at_close;
    stats_.latency.add(end - issued);
  });

  out.overload = stats_;

  // Merge the overload columns into the backend's interval series; backends
  // without interval hooks get the driver's own rows (query counts come
  // from the observer there, so completed/satisfied are still populated).
  if (interval_rows_.empty()) return;
  if (out.interval_series.empty()) {
    out.interval_series = interval_rows_;
    return;
  }
  std::size_t n = std::min(out.interval_series.size(), interval_rows_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.interval_series[i].arrivals = interval_rows_[i].arrivals;
    out.interval_series[i].rejected = interval_rows_[i].rejected;
    out.interval_series[i].shed = interval_rows_[i].shed;
    out.interval_series[i].slo_ok = interval_rows_[i].slo_ok;
  }
}

}  // namespace guess::search
