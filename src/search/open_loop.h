// OpenLoopDriver — open-loop arrivals + overload control over any
// SearchBackend (DESIGN.md §13).
//
// run_search attaches one of these when SimulationOptions::arrival is kOpen.
// The driver:
//   * silences the backend's closed-loop query clock and installs itself as
//     the QueryObserver (SearchBackend::configure_open_loop);
//   * runs a sim::ArrivalProcess at offered_qps on dedicated RNG streams
//     (seed ^ salt), so attaching it never perturbs the backend's draws;
//   * gates every arrival through an OverloadController (none / admit /
//     shed / backpressure) and starts admitted queries via
//     SearchBackend::start_query with their original arrival instant — a
//     query's measured latency includes any time it spent queued;
//   * accounts latency (LogHistogram), SLO conformance, goodput, rejects,
//     sheds and abandons into SearchResults::overload and the per-interval
//     series; at the end of the window, queries still open are censored at
//     their current age (the satellite fix: in-flight work is counted, not
//     silently dropped).
//
// Determinism: the controller is pure arithmetic, the arrival process and
// origin draws use their own Rng streams, and all event scheduling rides
// the simulator's (time, seq) order — open-loop runs are bitwise identical
// across heap/calendar schedulers and thread counts (asserted by
// tests/search/open_loop_test.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "guess/config.h"
#include "guess/metrics.h"
#include "guess/overload.h"
#include "search/backend.h"
#include "sim/arrival.h"
#include "sim/simulator.h"

namespace guess::search {

class OpenLoopDriver final : public QueryObserver {
 public:
  OpenLoopDriver(const SimulationConfig& config, sim::Simulator& simulator,
                 SearchBackend& backend);

  /// Configure the backend for open-loop operation and schedule the arrival
  /// process (and, for kBackpressure, the AIMD control tick). Call once,
  /// after bootstrap() and before any events run.
  void start();

  /// Start the measurement window (run_search calls this right after the
  /// backend's own begin_measurement()).
  void begin_measurement();

  /// Close the current overload-accounting interval (run_search calls this
  /// right after the backend's own sample_interval()).
  void sample_interval();

  /// End-of-run: census still-open queries at their current age, stamp
  /// SearchResults::overload, and merge the per-interval overload columns
  /// into the backend's interval series (or install the driver's own series
  /// for backends without interval hooks).
  void finalize(SearchResults& out);

  // --- QueryObserver (called by the backend) ---
  void on_query_complete(double latency, bool satisfied) override;
  void on_query_abandoned(double age) override;

 private:
  struct PumpFired {
    OpenLoopDriver* driver;
    void operator()() const { driver->pump(); }
  };
  struct ControlTickFired {
    OpenLoopDriver* driver;
    void operator()() const { driver->control_tick(); }
  };

  void on_arrival();
  /// Start queued arrivals while the controller grants slots. Re-entrancy
  /// guarded: synchronous backends complete queries inside start_query,
  /// which calls back into on_query_complete -> pump.
  void pump();
  void launch(sim::Time issued);
  void control_tick();

  sim::Simulator& simulator_;
  SearchBackend& backend_;
  OverloadController controller_;
  sim::ArrivalProcess arrivals_;
  Rng workload_rng_;
  OverloadPolicy policy_;
  double slo_;
  sim::Duration control_interval_;

  bool measuring_ = false;
  bool pumping_ = false;
  OverloadStats stats_;
  TransportCounters last_transport_;

  // Per-interval accumulators (run from t=0, like the backend's own
  // interval series — recovery analysis needs pre-fault baselines).
  sim::Duration interval_width_ = 0.0;
  sim::Time interval_start_ = 0.0;
  struct IntervalAcc {
    std::uint64_t arrivals = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t slo_ok = 0;
    std::uint64_t completed = 0;
    std::uint64_t satisfied = 0;
  };
  IntervalAcc acc_;
  IntervalSeries interval_rows_;
};

}  // namespace guess::search
