// SearchBackend — one API over every search protocol (DESIGN.md §12).
//
// The paper's central move is comparing GUESS against forwarding search
// under one methodology. The repo grew four protocol silos (src/guess,
// src/gnutella, src/baseline, src/onehop), each with its own params,
// results and driver; SearchBackend unifies them behind a single interface
// driven by SimulationConfig, so the harness, guess_cli --backend=...,
// examples and benches all run protocols through one code path — and the
// churn, lossy-transport and fault-scenario machinery becomes available to
// every backend, not just GUESS.
//
//   auto config = guess::SimulationConfig()
//                     .backend(guess::SearchBackendId::kGossip)
//                     .seed(7);
//   guess::search::SearchResults r = guess::search::run_search(config);
//
// Ported protocols run as thin adapters over their legacy engines and are
// bitwise-identical to the legacy free-standing drivers (asserted by
// tests/search/backend_equivalence_test.cc); the legacy per-backend results
// struct rides along in the typed extension slot (`extra_as<T>()`).
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "faults/fault_host.h"
#include "guess/config.h"
#include "guess/metrics.h"
#include "sim/simulator.h"

namespace guess::search {

/// Nominal wire sizes (bytes) used to convert message counts into
/// bytes-on-wire, uniformly across backends. The absolute numbers are a
/// documented model (DESIGN.md §12.3), not a packet trace; what matters for
/// the matrix bench is that every backend is billed by the same schedule.
struct WireModel {
  std::size_t header = 24;            ///< per message: framing + ids + type
  std::size_t probe_payload = 16;     ///< query/probe/ping request body
  std::size_t result_entry = 24;      ///< one (provider, file) result
  std::size_t ad_entry = 16;          ///< one pong/advertisement entry
  std::size_t membership_entry = 16;  ///< one-hop membership event record
};

/// The wire model every in-tree mapping uses.
inline constexpr WireModel kWire{};

/// Unified results superset. Naming normalization (the silo drift this
/// fixes; all rates are fractions in [0, 1], never percents):
///   * queries_completed/satisfied — "lookups" in OneHopResults.
///   * probes — peers contacted per query, summed over completed queries:
///     GUESS probes.total(), flooding peers_reached, DHT probes incl.
///     timeouts, iterative peers probed, gossip probes.
///   * query_messages — transmissions serving queries, duplicates included:
///     flooding's "messages" (forward legs); direct-probe backends count
///     request + reply legs (dead/lost targets never reply).
///   * maintenance_messages — protocol upkeep: GUESS ping+pong legs,
///     flooding repair handshakes, DHT membership dissemination (events ×
///     N), gossip push/pull legs.
/// Per-backend extras (the full legacy results struct) travel in the typed
/// extension slot: `extra_as<SimulationResults>()` for GUESS,
/// `extra_as<gnutella::DynamicResults>()`, `extra_as<onehop::OneHopResults>()`,
/// `extra_as<baseline::DeepeningResult>()`, `extra_as<GossipStats>()`.
struct SearchResults {
  std::string backend;
  std::size_t network_size = 0;
  double measure_duration = 0.0;  ///< seconds of measurement window

  std::uint64_t queries_completed = 0;
  std::uint64_t queries_satisfied = 0;
  std::uint64_t probes = 0;
  std::uint64_t query_messages = 0;
  std::uint64_t maintenance_messages = 0;
  std::uint64_t query_bytes = 0;        ///< via kWire (DESIGN.md §12.3)
  std::uint64_t maintenance_bytes = 0;  ///< via kWire
  std::uint64_t deaths = 0;

  /// First-result latency of satisfied queries, seconds. Empty for the
  /// analytic backends (iterative) and the DHT (lookup latency is a probe
  /// count there, not simulated time).
  RunningStat response_time;

  /// Per-query probes, one sample per completed query (percentiles).
  SampleSet probe_samples;

  /// Time-resolved series (metrics_interval > 0); empty for backends
  /// without interval hooks.
  IntervalSeries interval_series;

  /// Open-loop arrival + overload-control accounting (DESIGN.md §13); all
  /// zeros (open_loop == false) for closed-loop runs.
  OverloadStats overload;

  /// Typed extension slot: the backend's legacy results struct.
  std::any extra;

  template <typename T>
  const T* extra_as() const {
    return std::any_cast<T>(&extra);
  }

  // --- derived (fractions, not percents) ---
  double success_rate() const;
  double unsatisfied_rate() const { return 1.0 - success_rate(); }
  double probes_per_query() const;
  double query_messages_per_query() const;
  std::uint64_t bytes_on_wire() const { return query_bytes + maintenance_bytes; }
  double bytes_per_query() const;
  /// Percentile p in [0, 100] of the per-query probe distribution (0 when
  /// the backend recorded no samples).
  double probes_percentile(double p) const;
};

/// Abstract search protocol. Constructed from (SimulationConfig, Simulator,
/// Rng) by the factory; driven by run_search() in the exact order
/// GuessSimulation::run() established (bootstrap → faults → intervals →
/// warmup → begin_measurement → measure → collect), so the GUESS adapter is
/// bitwise-identical to the legacy driver.
///
/// SearchBackend is a faults::FaultHost: the PR 4 fault-scenario engine
/// drives any backend. The base class rejects every action with a
/// CheckError naming the backend; backends override what they support
/// (GUESS: everything; gossip: kill/join/partition/degrade).
class SearchBackend : public faults::FaultHost {
 public:
  ~SearchBackend() override = default;

  virtual const char* name() const = 0;

  /// Build the initial population and start timers/workloads. Call once,
  /// before running the simulator.
  virtual void bootstrap() = 0;

  /// Start the measurement window (end of warmup). Backends also schedule
  /// their own periodic samplers here.
  virtual void begin_measurement() = 0;

  /// Inject one query from a uniformly random live peer for a
  /// workload-drawn target, through the normal protocol machinery. `rng`
  /// supplies the origin/target draws where the legacy engine does not
  /// (backends with an internal lookup generator may ignore it). `issued`
  /// is the query's external issue time (its open-loop arrival instant —
  /// latency is billed from here, including any controller queueing delay);
  /// direct callers pass the current simulated time.
  virtual void start_query(Rng& rng, sim::Time issued) = 0;

  /// Attach the open-loop query-lifecycle observer and silence the
  /// backend's own closed-loop query clock for this run. Called once by the
  /// driver, after bootstrap() and before any events run. The base class
  /// rejects (CheckError) — a backend that cannot report per-query
  /// completion must not silently drop latency accounting.
  virtual void configure_open_loop(QueryObserver* observer);

  /// Transport-level counters observed so far (AIMD backpressure feedback);
  /// backends without a transport report zeros.
  virtual TransportCounters transport_counters() const { return {}; }

  /// Visit the external issue time of every query currently open (active
  /// or queued inside the backend). End-of-window censusing: the driver
  /// bills still-running queries their age so an overloaded run cannot
  /// hide its backlog. Synchronous backends have nothing open.
  virtual void visit_open_queries(
      const std::function<void(sim::Time)>& visit) const {
    (void)visit;
  }

  /// Finalize and return results (run control fields like measure_duration
  /// are stamped by the driver).
  virtual SearchResults collect() = 0;

  virtual std::size_t live_peers() const = 0;

  // --- per-interval metric hooks (DESIGN.md §9/§12) ---
  // Default: unsupported; the series stays empty. begin_intervals runs at
  // t=0 (pre-fault baselines), sample_interval at every interval boundary.
  virtual void begin_intervals(sim::Duration width) { (void)width; }
  virtual void sample_interval() {}

  // --- faults::FaultHost: reject-by-default ---
  void fault_mass_kill(double fraction) override;
  void fault_mass_join(std::size_t count) override;
  void fault_set_partition(int ways) override;
  void fault_clear_partition() override;
  void fault_set_degradation(double extra_loss,
                             double latency_factor) override;
  void fault_clear_degradation() override;
  void fault_set_poisoning(bool active) override;
  void fault_start_attack(faults::AttackKind kind, double fraction) override;
  void fault_stop_attack(faults::AttackKind kind) override;

 protected:
  /// Throws CheckError: "backend <name> does not support fault action ...".
  [[noreturn]] void unsupported_fault(const char* action) const;
};

/// Factory signature: every backend builds from the same three inputs.
using BackendFactory = std::unique_ptr<SearchBackend> (*)(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng);

/// Override or extend the registry (the five in-tree backends are
/// pre-registered; tests may install instrumented doubles).
void register_backend(SearchBackendId id, BackendFactory factory);

/// Construct the backend selected by config.backend(). The config must
/// already be validated. Throws CheckError for an unregistered id.
std::unique_ptr<SearchBackend> make_backend(const SimulationConfig& config,
                                            sim::Simulator& simulator,
                                            Rng rng);

/// All registered backend ids, in enum order.
std::vector<SearchBackendId> registered_backends();

/// Run one full simulation of config.backend(): validate, build the
/// simulator and backend, bootstrap, attach the fault engine and interval
/// sampler, warm up, measure, collect. For kGuess this is bitwise-identical
/// to GuessSimulation::run() (asserted by tests).
SearchResults run_search(const SimulationConfig& config);

/// Seed sweep over run_search (config.seed(), +1, ...), on a worker pool of
/// options().threads threads — the run_seeds() contract: results come back
/// in seed order and are bitwise-identical for any thread count.
std::vector<SearchResults> run_search_seeds(
    const SimulationConfig& config, int num_seeds,
    const std::function<void(int, int)>& progress = {});

}  // namespace guess::search
