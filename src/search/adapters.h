// Factories for the four ported protocol silos (DESIGN.md §12.2). Each
// adapter wraps its legacy engine unchanged — construction, scheduling and
// collection replicate the legacy free-standing driver exactly, so outputs
// are bitwise-identical (tests/search/backend_equivalence_test.cc). The
// gossip backend (the first interface-native protocol) lives in gossip.h.
#pragma once

#include <memory>

#include "search/backend.h"

namespace guess::search {

std::unique_ptr<SearchBackend> make_guess_backend(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng);
std::unique_ptr<SearchBackend> make_flood_backend(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng);
std::unique_ptr<SearchBackend> make_iterative_backend(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng);
std::unique_ptr<SearchBackend> make_onehop_backend(
    const SimulationConfig& config, sim::Simulator& simulator, Rng rng);

}  // namespace guess::search
