#include "search/backend.h"

#include <cstdlib>
#include <map>
#include <utility>

#include "churn/lifetime.h"
#include "common/check.h"
#include "content/content_model.h"
#include "experiments/parallel_runner.h"
#include "faults/fault_engine.h"
#include "search/adapters.h"
#include "search/gossip.h"
#include "search/open_loop.h"

namespace guess::search {

double SearchResults::success_rate() const {
  return queries_completed == 0
             ? 0.0
             : static_cast<double>(queries_satisfied) /
                   static_cast<double>(queries_completed);
}

double SearchResults::probes_per_query() const {
  return queries_completed == 0 ? 0.0
                                : static_cast<double>(probes) /
                                      static_cast<double>(queries_completed);
}

double SearchResults::query_messages_per_query() const {
  return queries_completed == 0
             ? 0.0
             : static_cast<double>(query_messages) /
                   static_cast<double>(queries_completed);
}

double SearchResults::bytes_per_query() const {
  return queries_completed == 0
             ? 0.0
             : static_cast<double>(bytes_on_wire()) /
                   static_cast<double>(queries_completed);
}

double SearchResults::probes_percentile(double p) const {
  return probe_samples.empty() ? 0.0 : probe_samples.percentile(p);
}

void SearchBackend::configure_open_loop(QueryObserver*) {
  GUESS_CHECK_MSG(false, "backend " << name()
                                    << " does not support open-loop arrivals");
}

void SearchBackend::unsupported_fault(const char* action) const {
  GUESS_CHECK_MSG(false, "backend " << name()
                                    << " does not support fault action '"
                                    << action << "'");
  // GUESS_CHECK_MSG throws; unreachable.
  std::abort();
}

void SearchBackend::fault_mass_kill(double) { unsupported_fault("kill"); }
void SearchBackend::fault_mass_join(std::size_t) {
  unsupported_fault("join");
}
void SearchBackend::fault_set_partition(int) {
  unsupported_fault("partition");
}
void SearchBackend::fault_clear_partition() {
  unsupported_fault("partition");
}
void SearchBackend::fault_set_degradation(double, double) {
  unsupported_fault("degrade");
}
void SearchBackend::fault_clear_degradation() {
  unsupported_fault("degrade");
}
void SearchBackend::fault_set_poisoning(bool) {
  unsupported_fault("poison");
}
void SearchBackend::fault_start_attack(faults::AttackKind, double) {
  unsupported_fault("attack");
}
void SearchBackend::fault_stop_attack(faults::AttackKind) {
  unsupported_fault("attack");
}

namespace {

/// Function-local registry: built-ins are installed on first use, so static
/// library linking cannot drop them (no self-registration TUs to lose).
std::map<SearchBackendId, BackendFactory>& registry() {
  static std::map<SearchBackendId, BackendFactory> backends = {
      {SearchBackendId::kGuess, &make_guess_backend},
      {SearchBackendId::kFlood, &make_flood_backend},
      {SearchBackendId::kIterative, &make_iterative_backend},
      {SearchBackendId::kOneHop, &make_onehop_backend},
      {SearchBackendId::kGossip, &make_gossip_backend},
  };
  return backends;
}

}  // namespace

void register_backend(SearchBackendId id, BackendFactory factory) {
  GUESS_CHECK_MSG(factory != nullptr, "null backend factory");
  registry()[id] = factory;
}

std::unique_ptr<SearchBackend> make_backend(const SimulationConfig& config,
                                            sim::Simulator& simulator,
                                            Rng rng) {
  auto it = registry().find(config.backend());
  GUESS_CHECK_MSG(it != registry().end(),
                  "no backend registered for id "
                      << static_cast<int>(config.backend()));
  return it->second(config, simulator, std::move(rng));
}

std::vector<SearchBackendId> registered_backends() {
  std::vector<SearchBackendId> ids;
  ids.reserve(registry().size());
  for (const auto& [id, factory] : registry()) {
    (void)factory;
    ids.push_back(id);
  }
  return ids;
}

SearchResults run_search(const SimulationConfig& config) {
  config.validate();
  const SimulationOptions& options = config.options();
  sim::Simulator simulator(options.scheduler);
  std::unique_ptr<SearchBackend> backend =
      make_backend(config, simulator, Rng(config.seed()));

  backend->bootstrap();
  // Same scheduling order as GuessSimulation::run(): fault actions first,
  // then the open-loop driver, then the interval sampler — at an exact time
  // tie the fault applies before that instant's interval sample closes. All
  // ride the event queue's (time, seq) order, keeping runs bitwise
  // deterministic across scheduler backends. Closed-loop runs construct no
  // driver and schedule no extra events, so they stay bitwise identical to
  // the pre-open-loop code path.
  std::unique_ptr<faults::FaultEngine> fault_engine;
  if (!config.scenario().empty()) {
    fault_engine = std::make_unique<faults::FaultEngine>(config.scenario(),
                                                         simulator, *backend);
    fault_engine->schedule();
  }
  std::unique_ptr<OpenLoopDriver> driver;
  if (config.open_loop()) {
    driver = std::make_unique<OpenLoopDriver>(config, simulator, *backend);
    driver->start();
  }
  if (options.metrics_interval > 0.0) {
    backend->begin_intervals(options.metrics_interval);
    SearchBackend* raw = backend.get();
    OpenLoopDriver* raw_driver = driver.get();
    simulator.every(options.metrics_interval, options.metrics_interval,
                    [raw, raw_driver]() {
                      raw->sample_interval();
                      if (raw_driver) raw_driver->sample_interval();
                    });
  }
  simulator.run_until(options.warmup);
  backend->begin_measurement();
  if (driver) driver->begin_measurement();
  simulator.run_until(options.warmup + options.measure);

  SearchResults results = backend->collect();
  if (driver) driver->finalize(results);
  results.measure_duration = options.measure;
  return results;
}

std::vector<SearchResults> run_search_seeds(
    const SimulationConfig& config, int num_seeds,
    const std::function<void(int, int)>& progress) {
  GUESS_CHECK(num_seeds >= 1);
  config.validate();
  std::uint64_t base_seed = config.seed();
  auto run_one = [&, base_seed](int i) {
    SimulationConfig replication = config;
    replication.seed(base_seed + static_cast<std::uint64_t>(i));
    return run_search(replication);
  };

  int threads = experiments::resolve_thread_count(config.options().threads);
  if (threads == 1 || num_seeds == 1) {
    std::vector<SearchResults> runs;
    runs.reserve(static_cast<std::size_t>(num_seeds));
    for (int i = 0; i < num_seeds; ++i) {
      runs.push_back(run_one(i));
      if (progress) progress(i + 1, num_seeds);
    }
    return runs;
  }

  // Warm the shared immutable quantile tables on this thread so workers read
  // fully-constructed statics instead of serializing on their init guards.
  content::ContentModel::sharing_distribution();
  churn::LifetimeDistribution::base_distribution();

  experiments::ParallelRunner runner(threads);
  return runner.map<SearchResults>(num_seeds, run_one, progress);
}

}  // namespace guess::search
