// One-hop DHT lookups — the structured-overlay counterpart of
// non-forwarding search (the paper's reference [1], Gupta/Liskov/Rodrigues).
//
// The paper positions GUESS against one-hop DHTs in §1: both avoid
// forwarding, but the DHT buys its single-hop lookups with full membership
// state at every peer, maintained by disseminating every join/leave to
// everyone — and supports only search-by-identifier. This module makes the
// contrast measurable on the same churn substrate.
//
// Model: peers sit on a key ring; the peer clockwise-closest to a key owns
// it. Every peer keeps a full routing table whose content lags reality by
// the dissemination delay D (the mean time for a membership event to reach
// all peers). A lookup probes the *believed* owner directly:
//   * believed owner already departed → timeout, retry with the next
//     believed successor (each retry is a wasted probe, like GUESS's dead
//     probes);
//   * believed owner is alive but a newer join actually owns the key → one
//     corrective forward hop (the "two-hop" case of [1]).
// Maintenance traffic is the defining cost: every membership event must
// reach all N peers, so each peer processes ~2·N/mean_lifetime messages
// per second regardless of whether it ever looks anything up.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "churn/churn_manager.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sim/simulator.h"

namespace guess::onehop {

struct OneHopParams {
  std::size_t network_size = 1000;
  double lifespan_multiplier = 1.0;
  /// Lookups per peer per second (the paper's QueryRate, for comparability).
  double lookup_rate = 9.26e-3;
  /// Dissemination delay: how stale every peer's routing table is.
  sim::Duration dissemination_delay = 30.0;
  /// I.i.d. per-probe loss probability (DESIGN.md §8 made available to the
  /// DHT): a lost probe is counted as a timeout and the lookup retries the
  /// next believed successor, like a probe to a departed owner. 0 draws no
  /// randomness, so legacy runs are bitwise unaffected.
  double loss = 0.0;
  /// Closed-loop lookup clock: when false the DHT schedules no internal
  /// lookups (open-loop mode — lookups arrive only via lookup_random_key).
  bool enable_lookups = true;
};

struct OneHopResults {
  std::uint64_t lookups = 0;
  std::uint64_t one_hop = 0;        ///< direct hit on the true owner
  std::uint64_t corrective_hops = 0;///< believed owner alive but superseded
  std::uint64_t timeouts = 0;       ///< probes to departed believed owners
  RunningStat probes_per_lookup;    ///< timeouts + final probe (+ forward)
  SampleSet lookup_probes;          ///< same quantity, one sample per lookup
  std::uint64_t deaths = 0;
  std::uint64_t membership_events = 0;  ///< joins + leaves during measurement

  double one_hop_fraction() const;
  double mean_probes() const;
  /// Membership-maintenance messages per peer per second: every event is
  /// disseminated to every peer ([1]'s defining overhead).
  double maintenance_msgs_per_peer_per_sec(double measure_seconds) const;
};

class OneHopDht {
 public:
  OneHopDht(OneHopParams params, sim::Simulator& simulator, Rng rng);
  ~OneHopDht();

  OneHopDht(const OneHopDht&) = delete;
  OneHopDht& operator=(const OneHopDht&) = delete;

  /// Create the initial population (views start synchronized). Call once.
  void initialize();

  /// Start counting lookups and membership events.
  void begin_measurement();

  OneHopResults results() const { return results_; }

  /// Perform one lookup for a uniformly random key (also driven internally
  /// by the configured lookup_rate; exposed for tests and the open-loop
  /// adapter). @returns true if the lookup resolved to a live owner (false
  /// only in the pathological every-view-entry-stale case).
  bool lookup_random_key();

  /// Fault hooks (DESIGN.md §9): kill a uniform fraction of live peers with
  /// no respawn, or join `count` fresh peers at once. Deaths and joins
  /// disseminate through the lagged view like churn-driven ones.
  void mass_kill(double fraction);
  void mass_join(std::size_t count);

  std::size_t alive_count() const { return ring_.size(); }
  std::size_t view_size() const { return view_.size(); }

 private:
  using Position = std::uint64_t;

  void spawn_peer(bool initial);
  void on_peer_death(Position position);
  void remove_peer(Position position, bool respawn);
  void schedule_next_lookup();
  /// Owner of `key` in a ring map (clockwise successor, wrapping).
  static Position owner_of(const std::map<Position, std::uint64_t>& ring,
                           Position key);

  OneHopParams params_;
  sim::Simulator& simulator_;
  Rng rng_;
  std::unique_ptr<churn::ChurnManager> churn_;

  std::uint64_t next_node_id_ = 0;
  /// Reality: position -> node incarnation id.
  std::map<Position, std::uint64_t> ring_;
  /// Everyone's (uniformly lagged) view of the ring.
  std::map<Position, std::uint64_t> view_;

  bool measuring_ = false;
  OneHopResults results_;
};

}  // namespace guess::onehop
