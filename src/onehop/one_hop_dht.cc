#include "onehop/one_hop_dht.h"

#include <limits>
#include <vector>

#include "common/check.h"

namespace guess::onehop {

double OneHopResults::one_hop_fraction() const {
  return lookups == 0 ? 0.0
                      : static_cast<double>(one_hop) /
                            static_cast<double>(lookups);
}

double OneHopResults::mean_probes() const {
  return probes_per_lookup.mean();
}

double OneHopResults::maintenance_msgs_per_peer_per_sec(
    double measure_seconds) const {
  if (measure_seconds <= 0.0) return 0.0;
  // Every membership event is delivered to every peer once; per peer that
  // is simply the event rate.
  return static_cast<double>(membership_events) / measure_seconds;
}

OneHopDht::OneHopDht(OneHopParams params, sim::Simulator& simulator, Rng rng)
    : params_(params), simulator_(simulator), rng_(std::move(rng)) {
  GUESS_CHECK(params_.network_size >= 2);
  GUESS_CHECK(params_.dissemination_delay >= 0.0);
  GUESS_CHECK(params_.loss >= 0.0 && params_.loss < 1.0);
  churn_ = std::make_unique<churn::ChurnManager>(
      simulator_, churn::LifetimeDistribution(params_.lifespan_multiplier),
      rng_.split(),
      [this](churn::PeerId position) { on_peer_death(position); });
}

OneHopDht::~OneHopDht() = default;

void OneHopDht::initialize() {
  GUESS_CHECK_MSG(ring_.empty(), "initialize() called twice");
  for (std::size_t i = 0; i < params_.network_size; ++i) {
    spawn_peer(/*initial=*/true);
  }
  // Initial views are synchronized.
  view_ = ring_;
  if (params_.enable_lookups) schedule_next_lookup();
}

void OneHopDht::spawn_peer(bool initial) {
  // 64-bit random ring positions: collisions are absent in practice, and
  // positions are never reused, so a stale view entry is unambiguous.
  Position position = 0;
  do {
    position = static_cast<Position>(rng_.uniform_int(
        0, std::numeric_limits<std::int64_t>::max()));
  } while (ring_.contains(position));
  std::uint64_t node = next_node_id_++;
  ring_.emplace(position, node);
  if (initial) {
    churn_->register_peer_scaled(position, std::max(1e-6, rng_.uniform()));
  } else {
    churn_->register_peer(position);
    if (measuring_) ++results_.membership_events;
    // The join reaches everyone after the dissemination delay.
    simulator_.after(params_.dissemination_delay,
                     [this, position, node]() {
                       view_.emplace(position, node);
                     });
  }
}

void OneHopDht::on_peer_death(Position position) {
  // Constant population, like the GUESS simulations.
  remove_peer(position, /*respawn=*/true);
}

void OneHopDht::remove_peer(Position position, bool respawn) {
  ring_.erase(position);
  if (measuring_) {
    ++results_.deaths;
    ++results_.membership_events;
  }
  simulator_.after(params_.dissemination_delay,
                   [this, position]() { view_.erase(position); });
  if (respawn) spawn_peer(/*initial=*/false);
}

void OneHopDht::mass_kill(double fraction) {
  GUESS_CHECK(fraction >= 0.0 && fraction <= 1.0);
  auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(ring_.size()));
  // Keep at least two peers so the ring stays meaningful.
  if (ring_.size() < count + 2) {
    count = ring_.size() > 2 ? ring_.size() - 2 : 0;
  }
  std::vector<Position> positions;
  positions.reserve(ring_.size());
  for (const auto& [position, node] : ring_) {
    (void)node;
    positions.push_back(position);
  }
  std::vector<std::size_t> picks =
      rng_.sample_indices(positions.size(), count);
  for (std::size_t i : picks) {
    Position victim = positions[i];
    churn_->deschedule(victim);
    remove_peer(victim, /*respawn=*/false);
  }
}

void OneHopDht::mass_join(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) spawn_peer(/*initial=*/false);
}

OneHopDht::Position OneHopDht::owner_of(
    const std::map<Position, std::uint64_t>& ring, Position key) {
  GUESS_CHECK(!ring.empty());
  auto it = ring.lower_bound(key);
  if (it == ring.end()) it = ring.begin();  // wrap around the ring
  return it->first;
}

void OneHopDht::schedule_next_lookup() {
  // Poisson lookups across the population.
  double rate = params_.lookup_rate *
                static_cast<double>(params_.network_size);
  simulator_.after(rng_.exponential(rate), [this]() {
    lookup_random_key();
    schedule_next_lookup();
  });
}

bool OneHopDht::lookup_random_key() {
  if (view_.empty() || ring_.empty()) return false;
  auto key = static_cast<Position>(
      rng_.uniform_int(0, std::numeric_limits<std::int64_t>::max()));
  Position true_owner = owner_of(ring_, key);

  std::uint64_t timeouts = 0;
  Position believed = owner_of(view_, key);
  // Walk the believed successor list past departed peers — and, under loss,
  // past probes that never came back. Bounded by the view size (in practice
  // a handful of steps at realistic churn). The loss guard short-circuits,
  // so a loss-free run draws no randomness here (bitwise legacy behavior).
  std::size_t safety = view_.size();
  while ((!ring_.contains(believed) ||
          (params_.loss > 0.0 && rng_.bernoulli(params_.loss))) &&
         safety-- > 0) {
    ++timeouts;
    auto it = view_.upper_bound(believed);
    if (it == view_.end()) it = view_.begin();
    believed = it->first;
  }
  if (!ring_.contains(believed)) return false;  // pathological: view all stale

  bool direct = believed == true_owner;
  std::uint64_t probes = timeouts + 1 + (direct ? 0 : 1);
  if (!measuring_) return true;
  ++results_.lookups;
  if (direct && timeouts == 0) ++results_.one_hop;
  if (!direct) ++results_.corrective_hops;
  results_.timeouts += timeouts;
  results_.probes_per_lookup.add(static_cast<double>(probes));
  results_.lookup_probes.add(static_cast<double>(probes));
  return true;
}

void OneHopDht::begin_measurement() { measuring_ = true; }

}  // namespace guess::onehop
