// Death/birth scheduling for a constant-population network.
//
// The paper's model: when a peer dies it never returns, and a new peer is
// born immediately, keeping exactly NetworkSize peers alive. The churn
// manager samples a lifetime whenever a peer is registered, schedules its
// death, and invokes a client callback that performs the death and the
// replacement birth (the client re-registers the newborn).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "churn/lifetime.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace guess::churn {

using PeerId = std::uint64_t;

class ChurnManager {
 public:
  /// `on_death(id)` is called exactly once per registered peer, at its death
  /// time. The callback typically kills the peer in the network and births a
  /// replacement, registering the replacement with register_peer().
  ChurnManager(sim::Simulator& simulator, LifetimeDistribution lifetimes,
               Rng rng, std::function<void(PeerId)> on_death);

  /// Sample a lifetime for `id` and schedule its death. A peer whose death
  /// should not be simulated (e.g. an immortal attacker in a worst-case
  /// scenario) is simply never registered.
  /// @returns the sampled lifetime, for logging/tests.
  sim::Duration register_peer(PeerId id);

  /// Register with a residual lifetime drawn as a fresh sample scaled by
  /// `fraction`. Used to start the initial population "mid-session" so the
  /// simulation does not begin with a synchronized death wave.
  sim::Duration register_peer_scaled(PeerId id, double fraction);

  /// Cancel `id`'s scheduled natural death without invoking on_death. Used
  /// when something other than churn removes the peer (a fault-scenario mass
  /// kill), so the stale death event cannot fire against a recycled or
  /// vanished id. No-op for unknown ids (e.g. never-registered immortals).
  /// @returns true if a pending death was cancelled.
  bool deschedule(PeerId id);

  std::uint64_t deaths() const { return deaths_; }
  /// Peers with a death currently scheduled (tests/invariants).
  std::size_t pending_count() const { return pending_.size(); }
  const LifetimeDistribution& lifetimes() const { return lifetimes_; }

 private:
  /// Fixed-size death-event callable (stays within the event queue's inline
  /// buffer, so scheduling a death never allocates).
  struct DeathFired;

  void schedule_death(PeerId id, sim::Duration in);

  sim::Simulator& simulator_;
  LifetimeDistribution lifetimes_;
  Rng rng_;
  std::function<void(PeerId)> on_death_;
  std::uint64_t deaths_ = 0;
  /// id -> handle of its scheduled death; erased when the death fires or is
  /// descheduled. Registering an id twice overwrites (the old handle is
  /// cancelled) — the network never does this, but leaving both armed would
  /// fire on_death twice for one peer.
  std::unordered_map<PeerId, sim::EventHandle> pending_;
};

}  // namespace guess::churn
