// Peer session lifetime model.
//
// The paper draws peer lifetimes from the measured Gnutella session-duration
// sample of Saroiu et al. [18] and scales them with LifespanMultiplier. The
// trace is not available, so we synthesize an empirical quantile table with
// the published qualitative shape (see DESIGN.md, substitution #1):
//   * heavy-tailed: many very short sessions, a long tail of multi-hour ones
//   * median session time ≈ 60 minutes
//   * ~20% of sessions shorter than ~10 minutes
//   * a small fraction of sessions lasting a day or more
// Every experiment in the paper depends only on the ratio between cache
// maintenance rate and peer death rate plus the heavy tail, both of which the
// table preserves.
#pragma once

#include "common/empirical.h"
#include "common/rng.h"
#include "sim/time.h"

namespace guess::churn {

/// Session lifetime sampler with the paper's LifespanMultiplier knob.
class LifetimeDistribution {
 public:
  /// @param multiplier  the paper's LifespanMultiplier: every sampled
  ///                    lifetime is scaled by this factor (default 1).
  explicit LifetimeDistribution(double multiplier = 1.0);

  /// Draw a session lifetime in seconds (> 0).
  sim::Duration sample(Rng& rng) const;

  /// Mean lifetime in seconds (exact for the synthetic table).
  sim::Duration mean() const;

  double multiplier() const { return multiplier_; }

  /// The underlying Saroiu-style quantile table (multiplier 1), exposed for
  /// tests and documentation.
  static const EmpiricalDistribution& base_distribution();

 private:
  double multiplier_;
};

}  // namespace guess::churn
