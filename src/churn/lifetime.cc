#include "churn/lifetime.h"

#include "common/check.h"

namespace guess::churn {

namespace {
// Synthetic session-duration quantile table modeled on the CDF published by
// Saroiu et al. [18] for Gnutella peers (values in seconds). Median 60 min,
// ~20% under 10 min, heavy upper tail capped at 3 days (sessions longer than
// the measurement window are indistinguishable from "very long").
const EmpiricalDistribution& saroiu_table() {
  static const EmpiricalDistribution table({
      {0.00, 30.0},        // sub-minute flappers
      {0.10, 240.0},       // 4 min
      {0.20, 600.0},       // 10 min
      {0.35, 1500.0},      // 25 min
      {0.50, 3600.0},      // 60 min (median, per [18])
      {0.65, 7200.0},      // 2 h
      {0.80, 16200.0},     // 4.5 h
      {0.90, 36000.0},     // 10 h
      {0.97, 86400.0},     // 1 day
      {1.00, 259200.0},    // 3 days
  });
  return table;
}
}  // namespace

LifetimeDistribution::LifetimeDistribution(double multiplier)
    : multiplier_(multiplier) {
  GUESS_CHECK_MSG(multiplier > 0.0, "LifespanMultiplier must be positive");
}

sim::Duration LifetimeDistribution::sample(Rng& rng) const {
  return saroiu_table().sample(rng) * multiplier_;
}

sim::Duration LifetimeDistribution::mean() const {
  return saroiu_table().mean() * multiplier_;
}

const EmpiricalDistribution& LifetimeDistribution::base_distribution() {
  return saroiu_table();
}

}  // namespace guess::churn
