#include "churn/churn_manager.h"

#include <utility>

#include "common/check.h"

namespace guess::churn {

ChurnManager::ChurnManager(sim::Simulator& simulator,
                           LifetimeDistribution lifetimes, Rng rng,
                           std::function<void(PeerId)> on_death)
    : simulator_(simulator),
      lifetimes_(lifetimes),
      rng_(std::move(rng)),
      on_death_(std::move(on_death)) {
  GUESS_CHECK(on_death_ != nullptr);
}

sim::Duration ChurnManager::register_peer(PeerId id) {
  sim::Duration life = lifetimes_.sample(rng_);
  schedule_death(id, life);
  return life;
}

sim::Duration ChurnManager::register_peer_scaled(PeerId id, double fraction) {
  GUESS_CHECK(fraction > 0.0 && fraction <= 1.0);
  sim::Duration life = lifetimes_.sample(rng_) * fraction;
  schedule_death(id, life);
  return life;
}

struct ChurnManager::DeathFired {
  ChurnManager* manager;
  PeerId id;
  void operator()() const {
    // Erase before the callback: on_death may register new peers (the
    // replacement birth) and must see a map without this dead entry.
    manager->pending_.erase(id);
    ++manager->deaths_;
    manager->on_death_(id);
  }
};

void ChurnManager::schedule_death(PeerId id, sim::Duration in) {
  static_assert(sim::EventQueue::Callback::stores_inline<DeathFired>());
  auto [it, inserted] = pending_.try_emplace(id);
  if (!inserted) it->second.cancel();
  it->second = simulator_.after(in, DeathFired{this, id});
}

bool ChurnManager::deschedule(PeerId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  it->second.cancel();
  pending_.erase(it);
  return true;
}

}  // namespace guess::churn
